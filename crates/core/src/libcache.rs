//! `sna-libcache-v1` — the on-disk form of [`NoiseModelLibrary`].
//!
//! Characterization is the dominant cost of a cold SNA run (it owns the
//! chrome-trace), yet its artifacts are pure functions of (technology,
//! cell, options) — exactly the things the in-memory cache already keys
//! by. This module persists the cache so characterization is paid *once
//! per technology ever*: a warm run performs zero characterization solves.
//!
//! ## Format
//!
//! A hand-rolled little-endian binary layout (the vendored `serde` shim is
//! a no-op, and a versioned binary format lets us make staleness explicit
//! rather than accidental):
//!
//! ```text
//! magic    8 bytes   "SNALIBC1"
//! version  u32       1
//! section ×5, in ArtifactKind order (load_curve, holding_r, prop_table,
//!                                    thevenin, nrc):
//!   count  u64
//!   entry ×count:
//!     key_len  u32      key_bytes   [key_len]
//!     key_fp   u64      FNV-1a of key_bytes
//!     val_len  u32      val_bytes   [val_len]
//!     val_fp   u64      FNV-1a of val_bytes
//! ```
//!
//! Keys are the in-memory cache keys (which embed FNV fingerprints of the
//! full `Technology` and `CharacterizeOptions` — the `TranWorkspace`
//! fingerprint discipline), so an entry characterized under one technology
//! or tolerance set can never be served under another.
//!
//! ## Failure semantics
//!
//! * **Structural** problems — bad magic, unsupported version, truncation,
//!   trailing garbage — abort the load with an error. The caller logs a
//!   diagnostic and proceeds cold; already-validated entries stay usable.
//! * **Per-entry** problems — a fingerprint mismatch or a payload that
//!   fails semantic validation (e.g. a non-monotonic table axis, an
//!   unknown cell tag from a newer library) — reject just that entry,
//!   count it as `stale_rejected`, and continue. A stale entry is
//!   recomputed on first use; it is **never** served.
//!
//! Saving sorts entries by key bytes, so the file is a deterministic
//! function of the cache contents: `save(load(save(lib))) == save(lib)`
//! byte-for-byte (property-tested below), and repeated runs produce
//! `cmp`-equal cache files.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use sna_cells::characterize::{LoadCurve, PropagatedNoiseTable, TheveninDriver};
use sna_cells::{CellType, DriverMode};
use sna_spice::devices::{SourceWaveform, Table2d};
use sna_spice::error::{Error, Result};

use super::{
    ArtifactKind, CellIdent, CellKey, Entry, NoiseModelLibrary, NrcKey, TheveninKey,
    ALL_ARTIFACT_KINDS, ARTIFACT_KIND_COUNT,
};
use crate::nrc::NoiseRejectionCurve;

/// File magic: "SNALIBC1".
pub const MAGIC: &[u8; 8] = b"SNALIBC1";

/// Schema version this build reads and writes.
pub const VERSION: u32 = 1;

/// Human-facing schema name (used in CLI diagnostics and docs).
pub const SCHEMA: &str = "sna-libcache-v1";

/// Outcome summary of loading a cache file into a library.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskLoadStats {
    /// Entries validated and inserted.
    pub loaded: usize,
    /// Entries rejected (fingerprint mismatch or semantic validation).
    pub stale_rejected: usize,
    /// Inserted entries per [`ArtifactKind`], indexed by discriminant.
    pub per_kind_loaded: [usize; ARTIFACT_KIND_COUNT],
}

fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h = super::Fnv::new();
    h.write_bytes(bytes);
    h.finish()
}

fn corrupt(what: &str) -> Error {
    Error::InvalidAnalysis(format!("{SCHEMA}: {what}"))
}

// ---------------------------------------------------------------------------
// Byte-level plumbing
// ---------------------------------------------------------------------------

/// Little-endian byte sink.
#[derive(Debug, Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        Self::default()
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    fn f64_slice(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.f64(v);
        }
    }

    fn u64_slice(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(corrupt(&format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(&format!("invalid bool byte {b}"))),
        }
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid utf-8 string"))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.u32()? as usize;
        if n > self.remaining() / 8 {
            return Err(corrupt("f64 vector length exceeds remaining bytes"));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>> {
        let n = self.u32()? as usize;
        if n > self.remaining() / 8 {
            return Err(corrupt("u64 vector length exceeds remaining bytes"));
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

/// Decode a whole sub-slice with `f`, requiring every byte be consumed.
/// `None` means the entry is malformed — the caller treats it as stale.
fn decode_exact<T>(bytes: &[u8], f: impl FnOnce(&mut ByteReader) -> Result<T>) -> Option<T> {
    let mut r = ByteReader::new(bytes);
    let v = f(&mut r).ok()?;
    if r.remaining() != 0 {
        return None;
    }
    Some(v)
}

fn finite(v: f64) -> Result<f64> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(corrupt("non-finite value"))
    }
}

// ---------------------------------------------------------------------------
// Key encodings
// ---------------------------------------------------------------------------

fn intern_cell_tag(s: &str) -> Result<&'static str> {
    for t in [
        CellType::Inv,
        CellType::Buf,
        CellType::Nand2,
        CellType::Nor2,
        CellType::Aoi21,
    ] {
        if t.tag() == s {
            return Ok(t.tag());
        }
    }
    Err(corrupt(&format!("unknown cell tag {s:?}")))
}

fn encode_ident(w: &mut ByteWriter, ident: &CellIdent) {
    w.str(&ident.tech);
    w.u64(ident.tech_fp);
    w.str(ident.cell_tag);
    w.u64(ident.strength_bits);
}

fn decode_ident(r: &mut ByteReader) -> Result<CellIdent> {
    let tech = r.str()?;
    let tech_fp = r.u64()?;
    let cell_tag = intern_cell_tag(&r.str()?)?;
    let strength_bits = r.u64()?;
    Ok(CellIdent {
        tech,
        tech_fp,
        cell_tag,
        strength_bits,
    })
}

fn encode_cell_key(key: &CellKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_ident(&mut w, &key.ident);
    w.u64(key.noisy_input as u64);
    w.u64_slice(&key.level_bits);
    w.u64(key.opts_fp);
    w.into_bytes()
}

fn decode_cell_key(r: &mut ByteReader) -> Result<CellKey> {
    let ident = decode_ident(r)?;
    let noisy_input = r.u64()? as usize;
    let level_bits = r.u64_vec()?;
    let opts_fp = r.u64()?;
    Ok(CellKey {
        ident,
        noisy_input,
        level_bits,
        opts_fp,
    })
}

fn encode_prop_key(key: &(CellKey, i32)) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&encode_cell_key(&key.0));
    w.u64(key.1 as i64 as u64);
    w.into_bytes()
}

fn decode_prop_key(r: &mut ByteReader) -> Result<(CellKey, i32)> {
    let key = decode_cell_key(r)?;
    let bucket = r.u64()? as i64 as i32;
    Ok((key, bucket))
}

fn encode_thevenin_key(key: &TheveninKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_ident(&mut w, &key.ident);
    w.bool(key.rising);
    w.u64(key.slew_bits);
    for b in key.load_bits {
        w.u64(b);
    }
    w.u64(key.opts_fp);
    w.into_bytes()
}

fn decode_thevenin_key(r: &mut ByteReader) -> Result<TheveninKey> {
    let ident = decode_ident(r)?;
    let rising = r.bool()?;
    let slew_bits = r.u64()?;
    let mut load_bits = [0u64; 4];
    for b in &mut load_bits {
        *b = r.u64()?;
    }
    let opts_fp = r.u64()?;
    Ok(TheveninKey {
        ident,
        rising,
        slew_bits,
        load_bits,
        opts_fp,
    })
}

fn encode_nrc_key(key: &NrcKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_ident(&mut w, &key.ident);
    w.bool(key.input_low);
    w.u64_slice(&key.width_bits);
    w.u8(key.solver.0);
    w.u64(key.solver.1);
    w.into_bytes()
}

fn decode_nrc_key(r: &mut ByteReader) -> Result<NrcKey> {
    let ident = decode_ident(r)?;
    let input_low = r.bool()?;
    let width_bits = r.u64_vec()?;
    let solver = (r.u8()?, r.u64()?);
    Ok(NrcKey {
        ident,
        input_low,
        width_bits,
        solver,
    })
}

// ---------------------------------------------------------------------------
// Value encodings
// ---------------------------------------------------------------------------

fn encode_table(w: &mut ByteWriter, t: &Table2d) {
    w.f64_slice(t.x_axis());
    w.f64_slice(t.y_axis());
    w.f64_slice(t.values());
}

/// Decode a [`Table2d`] through its validating constructor, so corrupt
/// axes (non-monotonic, non-finite, length mismatch) reject the entry.
fn decode_table(r: &mut ByteReader) -> Result<Table2d> {
    let x = r.f64_vec()?;
    let y = r.f64_vec()?;
    let values = r.f64_vec()?;
    Table2d::new(x, y, values)
}

fn encode_mode(w: &mut ByteWriter, m: &DriverMode) {
    w.u64(m.noisy_input as u64);
    w.f64_slice(&m.input_levels);
    w.f64(m.output_level);
}

fn decode_mode(r: &mut ByteReader) -> Result<DriverMode> {
    let noisy_input = r.u64()? as usize;
    let input_levels = r.f64_vec()?;
    let output_level = finite(r.f64()?)?;
    if noisy_input >= input_levels.len().max(1) {
        return Err(corrupt("driver mode noisy_input out of range"));
    }
    Ok(DriverMode {
        noisy_input,
        input_levels,
        output_level,
    })
}

fn encode_load_curve(lc: &LoadCurve) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_table(&mut w, &lc.table);
    encode_mode(&mut w, &lc.mode);
    w.f64(lc.vdd);
    w.f64(lc.c_out);
    w.f64(lc.c_miller);
    w.into_bytes()
}

fn decode_load_curve(r: &mut ByteReader) -> Result<LoadCurve> {
    Ok(LoadCurve {
        table: decode_table(r)?,
        mode: decode_mode(r)?,
        vdd: finite(r.f64()?)?,
        c_out: finite(r.f64()?)?,
        c_miller: finite(r.f64()?)?,
    })
}

fn encode_prop_table(t: &PropagatedNoiseTable) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_table(&mut w, &t.peak);
    encode_table(&mut w, &t.width50);
    encode_table(&mut w, &t.area);
    encode_table(&mut w, &t.delay);
    encode_mode(&mut w, &t.mode);
    w.f64(t.vdd);
    w.f64(t.load_cap);
    w.f64(t.output_polarity);
    w.into_bytes()
}

fn decode_prop_table(r: &mut ByteReader) -> Result<PropagatedNoiseTable> {
    Ok(PropagatedNoiseTable {
        peak: decode_table(r)?,
        width50: decode_table(r)?,
        area: decode_table(r)?,
        delay: decode_table(r)?,
        mode: decode_mode(r)?,
        vdd: finite(r.f64()?)?,
        load_cap: finite(r.f64()?)?,
        output_polarity: finite(r.f64()?)?,
    })
}

/// Serialize a source waveform. Returns `false` (writing nothing) for
/// [`SourceWaveform::Sampled`], which holds an arbitrary waveform trace —
/// Thevenin *fits* always produce `Ramp`, so in practice every cached
/// driver persists; a hypothetical sampled one is simply not saved.
fn encode_wave(w: &mut ByteWriter, wave: &SourceWaveform) -> bool {
    match *wave {
        SourceWaveform::Dc(v) => {
            w.u8(0);
            w.f64(v);
        }
        SourceWaveform::Ramp {
            v0,
            v1,
            t_start,
            t_rise,
        } => {
            w.u8(1);
            for v in [v0, v1, t_start, t_rise] {
                w.f64(v);
            }
        }
        SourceWaveform::Pulse {
            v0,
            v1,
            t_delay,
            t_rise,
            t_width,
            t_fall,
        } => {
            w.u8(2);
            for v in [v0, v1, t_delay, t_rise, t_width, t_fall] {
                w.f64(v);
            }
        }
        SourceWaveform::TriangleGlitch {
            v_base,
            v_peak,
            t_start,
            t_rise,
            t_fall,
        } => {
            w.u8(3);
            for v in [v_base, v_peak, t_start, t_rise, t_fall] {
                w.f64(v);
            }
        }
        SourceWaveform::Pwl(ref pts) => {
            w.u8(4);
            w.u32(pts.len() as u32);
            for &(t, v) in pts {
                w.f64(t);
                w.f64(v);
            }
        }
        SourceWaveform::Sampled(_) => return false,
    }
    true
}

fn decode_wave(r: &mut ByteReader) -> Result<SourceWaveform> {
    match r.u8()? {
        0 => Ok(SourceWaveform::Dc(finite(r.f64()?)?)),
        1 => Ok(SourceWaveform::Ramp {
            v0: finite(r.f64()?)?,
            v1: finite(r.f64()?)?,
            t_start: finite(r.f64()?)?,
            t_rise: finite(r.f64()?)?,
        }),
        2 => Ok(SourceWaveform::Pulse {
            v0: finite(r.f64()?)?,
            v1: finite(r.f64()?)?,
            t_delay: finite(r.f64()?)?,
            t_rise: finite(r.f64()?)?,
            t_width: finite(r.f64()?)?,
            t_fall: finite(r.f64()?)?,
        }),
        3 => Ok(SourceWaveform::TriangleGlitch {
            v_base: finite(r.f64()?)?,
            v_peak: finite(r.f64()?)?,
            t_start: finite(r.f64()?)?,
            t_rise: finite(r.f64()?)?,
            t_fall: finite(r.f64()?)?,
        }),
        4 => {
            let n = r.u32()? as usize;
            if n > r.remaining() / 16 {
                return Err(corrupt("pwl point count exceeds remaining bytes"));
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                pts.push((finite(r.f64()?)?, finite(r.f64()?)?));
            }
            Ok(SourceWaveform::Pwl(pts))
        }
        t => Err(corrupt(&format!("unknown waveform tag {t}"))),
    }
}

fn encode_thevenin(th: &TheveninDriver) -> Option<Vec<u8>> {
    let mut w = ByteWriter::new();
    w.f64(th.rth);
    if !encode_wave(&mut w, &th.wave) {
        return None;
    }
    w.bool(th.rising);
    w.f64(th.vdd);
    Some(w.into_bytes())
}

fn decode_thevenin(r: &mut ByteReader) -> Result<TheveninDriver> {
    let rth = finite(r.f64()?)?;
    let wave = decode_wave(r)?;
    let rising = r.bool()?;
    let vdd = finite(r.f64()?)?;
    if rth <= 0.0 {
        return Err(corrupt("thevenin rth must be positive"));
    }
    Ok(TheveninDriver {
        rth,
        wave,
        rising,
        vdd,
    })
}

fn encode_nrc(curve: &NoiseRejectionCurve) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.f64_slice(&curve.widths);
    w.f64_slice(&curve.fail_heights);
    w.f64(curve.vdd);
    w.into_bytes()
}

fn decode_nrc(r: &mut ByteReader) -> Result<NoiseRejectionCurve> {
    let widths = r.f64_vec()?;
    let fail_heights = r.f64_vec()?;
    let vdd = finite(r.f64()?)?;
    if widths.len() < 2 || widths.len() != fail_heights.len() {
        return Err(corrupt("nrc axis lengths invalid"));
    }
    if !widths.windows(2).all(|p| p[1] > p[0])
        || widths.iter().any(|v| !v.is_finite())
        || fail_heights.iter().any(|v| !v.is_finite())
    {
        return Err(corrupt("nrc axes must be finite and strictly ascending"));
    }
    Ok(NoiseRejectionCurve {
        widths,
        fail_heights,
        vdd,
    })
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

fn write_section(w: &mut ByteWriter, mut entries: Vec<(Vec<u8>, Vec<u8>)>) {
    // Sorting by key bytes makes the file a deterministic function of the
    // cache *contents*, independent of shard iteration order.
    entries.sort();
    w.u64(entries.len() as u64);
    for (k, v) in entries {
        w.u32(k.len() as u32);
        w.bytes(&k);
        w.u64(fnv_bytes(&k));
        w.u32(v.len() as u32);
        w.bytes(&v);
        w.u64(fnv_bytes(&v));
    }
}

impl NoiseModelLibrary {
    /// Serialize every cached artifact into `sna-libcache-v1` bytes.
    ///
    /// Deterministic: entries are sorted by encoded key, so two libraries
    /// with the same contents produce byte-identical files.
    pub fn to_cache_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u32(VERSION);

        let mut entries = Vec::new();
        self.load_curves.for_each(|k, v| {
            entries.push((encode_cell_key(k), encode_load_curve(&v.value)));
        });
        write_section(&mut w, std::mem::take(&mut entries));

        self.holding.for_each(|k, v| {
            let mut vw = ByteWriter::new();
            vw.f64(v.value);
            entries.push((encode_cell_key(k), vw.into_bytes()));
        });
        write_section(&mut w, std::mem::take(&mut entries));

        self.prop_tables.for_each(|k, v| {
            entries.push((encode_prop_key(k), encode_prop_table(&v.value)));
        });
        write_section(&mut w, std::mem::take(&mut entries));

        self.thevenins.for_each(|k, v| {
            if let Some(bytes) = encode_thevenin(&v.value) {
                entries.push((encode_thevenin_key(k), bytes));
            }
        });
        write_section(&mut w, std::mem::take(&mut entries));

        self.nrcs.for_each(|k, v| {
            entries.push((encode_nrc_key(k), encode_nrc(&v.value)));
        });
        write_section(&mut w, entries);

        w.into_bytes()
    }

    /// Validate and insert one entry; `false` means stale (skip it).
    fn insert_cache_entry(&self, kind: ArtifactKind, key: &[u8], val: &[u8]) -> bool {
        match kind {
            ArtifactKind::LoadCurve => {
                match (
                    decode_exact(key, decode_cell_key),
                    decode_exact(val, decode_load_curve),
                ) {
                    (Some(k), Some(v)) => {
                        self.load_curves
                            .insert_if_absent(k, Entry::disk(Arc::new(v)));
                        true
                    }
                    _ => false,
                }
            }
            ArtifactKind::HoldingR => {
                match (
                    decode_exact(key, decode_cell_key),
                    decode_exact(val, |r| finite(r.f64()?)),
                ) {
                    (Some(k), Some(v)) => {
                        self.holding.insert_if_absent(k, Entry::disk(v));
                        true
                    }
                    _ => false,
                }
            }
            ArtifactKind::PropTable => {
                match (
                    decode_exact(key, decode_prop_key),
                    decode_exact(val, decode_prop_table),
                ) {
                    (Some(k), Some(v)) => {
                        self.prop_tables
                            .insert_if_absent(k, Entry::disk(Arc::new(v)));
                        true
                    }
                    _ => false,
                }
            }
            ArtifactKind::Thevenin => {
                match (
                    decode_exact(key, decode_thevenin_key),
                    decode_exact(val, decode_thevenin),
                ) {
                    (Some(k), Some(v)) => {
                        self.thevenins.insert_if_absent(k, Entry::disk(Arc::new(v)));
                        true
                    }
                    _ => false,
                }
            }
            ArtifactKind::Nrc => {
                match (
                    decode_exact(key, decode_nrc_key),
                    decode_exact(val, decode_nrc),
                ) {
                    (Some(k), Some(v)) => {
                        self.nrcs.insert_if_absent(k, Entry::disk(Arc::new(v)));
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Load `sna-libcache-v1` bytes into this library.
    ///
    /// Inserted entries are marked disk-provenanced, so later hits on them
    /// count as `disk_hits`; once this returns `Ok` the library counts
    /// every subsequent miss as a `disk_miss`. In-memory entries win ties
    /// (an already-characterized artifact is never replaced).
    ///
    /// # Errors
    ///
    /// Structural corruption — bad magic, unsupported version, truncation,
    /// trailing bytes. Per-entry staleness does *not* error; it increments
    /// `stale_rejected` (both in the returned summary and in
    /// [`LibraryStats`](super::LibraryStats)) and skips the entry.
    pub fn load_cache_bytes(&self, bytes: &[u8]) -> Result<DiskLoadStats> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(corrupt("bad magic (not a library cache file)"));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(corrupt(&format!(
                "unsupported schema version {version} (this build reads {VERSION})"
            )));
        }
        let mut out = DiskLoadStats::default();
        for kind in ALL_ARTIFACT_KINDS {
            let count = r.u64()? as usize;
            // Each entry occupies at least 24 framing bytes; a count that
            // can't fit is structural corruption, not 2^60 stale entries.
            if count > r.remaining() / 24 {
                return Err(corrupt(&format!(
                    "{} section claims {count} entries but only {} bytes remain",
                    kind.name(),
                    r.remaining()
                )));
            }
            for _ in 0..count {
                let key = r.len_prefixed()?;
                let key_fp = r.u64()?;
                let val = r.len_prefixed()?;
                let val_fp = r.u64()?;
                let ok = fnv_bytes(key) == key_fp
                    && fnv_bytes(val) == val_fp
                    && self.insert_cache_entry(kind, key, val);
                if ok {
                    out.loaded += 1;
                    out.per_kind_loaded[kind as usize] += 1;
                } else {
                    out.stale_rejected += 1;
                    self.record_stale(kind);
                }
            }
        }
        if r.remaining() != 0 {
            return Err(corrupt(&format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        self.disk_loaded.store(true, Ordering::Relaxed);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{tech_fingerprint, KindStats, LibraryStats};
    use super::*;
    use proptest::prelude::*;
    use sna_cells::characterize::{CharacterizeOptions, TheveninLoad};
    use sna_cells::{Cell, Technology};
    use sna_spice::solver::SolverKind;
    use sna_spice::units::PS;

    /// A small but fully-populated library: one artifact of every kind.
    fn populated_library() -> NoiseModelLibrary {
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech.clone(), 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        lib.load_curve(&cell, &mode, &opts).unwrap();
        lib.holding_resistance(&cell, &mode, &opts).unwrap();
        lib.propagated_table(&cell, &mode, 30e-15, &opts).unwrap();
        lib.thevenin(&cell, true, 60.0 * PS, &TheveninLoad::Lumped(25e-15), &opts)
            .unwrap();
        lib.nrc(&cell, true, &[200.0 * PS, 400.0 * PS], SolverKind::Auto)
            .unwrap();
        assert_eq!(lib.len(), 5);
        lib
    }

    #[test]
    fn round_trip_every_kind_and_warm_lookups_hit_from_disk() {
        let lib = populated_library();
        let bytes = lib.to_cache_bytes();
        assert_eq!(&bytes[..8], MAGIC);

        let warm = NoiseModelLibrary::new();
        let stats = warm.load_cache_bytes(&bytes).unwrap();
        assert_eq!(stats.loaded, 5);
        assert_eq!(stats.stale_rejected, 0);
        assert_eq!(stats.per_kind_loaded, [1, 1, 1, 1, 1]);
        assert_eq!(warm.len(), 5);

        // The reloaded library serializes to byte-identical contents.
        assert_eq!(warm.to_cache_bytes(), bytes);

        // Every lookup that populated the cold library now hits, with
        // disk provenance, and runs zero characterizations.
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        warm.load_curve(&cell, &mode, &opts).unwrap();
        warm.holding_resistance(&cell, &mode, &opts).unwrap();
        warm.propagated_table(&cell, &mode, 30e-15, &opts).unwrap();
        warm.thevenin(&cell, true, 60.0 * PS, &TheveninLoad::Lumped(25e-15), &opts)
            .unwrap();
        warm.nrc(&cell, true, &[200.0 * PS, 400.0 * PS], SolverKind::Auto)
            .unwrap();
        let st = warm.stats();
        assert_eq!((st.hits, st.misses), (5, 0));
        assert_eq!(st.disk_hits, 5);
        assert_eq!(st.disk_misses, 0);
        for k in ALL_ARTIFACT_KINDS {
            assert_eq!(
                st.kind(k),
                KindStats {
                    hits: 1,
                    misses: 0,
                    disk_hits: 1,
                    ..Default::default()
                }
            );
        }

        // Loaded values equal fresh characterization bit-for-bit: the warm
        // holding resistance matches the cold one exactly.
        let cold_r = lib.holding_resistance(&cell, &mode, &opts).unwrap();
        let warm_r = warm.holding_resistance(&cell, &mode, &opts).unwrap();
        assert_eq!(cold_r.to_bits(), warm_r.to_bits());
    }

    #[test]
    fn misses_after_disk_load_count_as_disk_misses() {
        let lib = populated_library();
        let warm = NoiseModelLibrary::new();
        warm.load_cache_bytes(&lib.to_cache_bytes()).unwrap();
        // An artifact the file does not contain: a different cell.
        let tech = Technology::cmos130();
        let cell = Cell::nand2(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        warm.holding_resistance(&cell, &mode, &opts).unwrap();
        let st = warm.stats();
        assert_eq!(st.kind(ArtifactKind::HoldingR).disk_misses, 1);
        assert_eq!(st.disk_misses, 1);
    }

    #[test]
    fn bad_magic_is_a_structural_error() {
        let lib = populated_library();
        let mut bytes = lib.to_cache_bytes();
        bytes[0] ^= 0xff;
        let fresh = NoiseModelLibrary::new();
        let err = fresh.load_cache_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        assert!(fresh.is_empty());
        // An empty file and a short file fail the same way, not panic.
        assert!(fresh.load_cache_bytes(&[]).is_err());
        assert!(fresh.load_cache_bytes(b"SNAL").is_err());
    }

    #[test]
    fn version_mismatch_is_a_structural_error() {
        let lib = populated_library();
        let mut bytes = lib.to_cache_bytes();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let fresh = NoiseModelLibrary::new();
        let err = fresh.load_cache_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");
        assert!(fresh.is_empty());
    }

    #[test]
    fn every_truncation_errs_and_never_panics() {
        let lib = populated_library();
        let bytes = lib.to_cache_bytes();
        // A valid file consumes itself exactly, so *every* strict prefix
        // must hit a structural error (truncation or trailing check).
        for n in 0..bytes.len() {
            let fresh = NoiseModelLibrary::new();
            assert!(
                fresh.load_cache_bytes(&bytes[..n]).is_err(),
                "prefix of {n} bytes unexpectedly loaded"
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        let lib = populated_library();
        let bytes = lib.to_cache_bytes();
        for i in (12..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x5a;
            let fresh = NoiseModelLibrary::new();
            // Either a structural error or a per-entry stale rejection —
            // never a panic, and never more entries than the original.
            if let Ok(stats) = fresh.load_cache_bytes(&corrupt) {
                assert!(stats.loaded <= 5, "offset {i}: loaded {}", stats.loaded);
            }
        }
    }

    #[test]
    fn fingerprint_stale_entry_is_rejected_then_recomputed() {
        // One NRC-only library gives a file whose single payload is easy
        // to locate: [magic 8][ver 4][4 empty sections 32][count 8]
        // [key_len 4][key][key_fp 8][val_len 4][val][val_fp 8].
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let lib = NoiseModelLibrary::new();
        let widths = [200.0 * PS, 400.0 * PS];
        lib.nrc(&cell, true, &widths, SolverKind::Auto).unwrap();
        let mut bytes = lib.to_cache_bytes();
        let key_len = u32::from_le_bytes(bytes[52..56].try_into().unwrap()) as usize;
        let val_start = 56 + key_len + 8 + 4;
        bytes[val_start] ^= 0xff; // corrupt the payload, not its checksum

        let fresh = NoiseModelLibrary::new();
        let stats = fresh.load_cache_bytes(&bytes).unwrap();
        assert_eq!(stats.loaded, 0);
        assert_eq!(stats.stale_rejected, 1);
        assert!(fresh.is_empty(), "stale entry must not be served");
        let st = fresh.stats();
        assert_eq!(st.stale_rejected, 1);
        assert_eq!(st.kind(ArtifactKind::Nrc).stale_rejected, 1);

        // First use recomputes — and matches the uncorrupted original.
        let a = lib.nrc(&cell, true, &widths, SolverKind::Auto).unwrap();
        let b = fresh.nrc(&cell, true, &widths, SolverKind::Auto).unwrap();
        assert_eq!(fresh.stats().kind(ArtifactKind::Nrc).misses, 1);
        assert_eq!(a.fail_heights, b.fail_heights);
    }

    #[test]
    fn in_memory_entries_win_over_disk_duplicates() {
        let lib = populated_library();
        let bytes = lib.to_cache_bytes();
        // Load the file into the *same* library: every key collides with a
        // fresh in-memory entry, which must be kept.
        let stats = lib.load_cache_bytes(&bytes).unwrap();
        assert_eq!(stats.loaded, 5);
        assert_eq!(lib.len(), 5);
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        lib.holding_resistance(&cell, &mode, &opts).unwrap();
        // The hit is served by the original in-process entry: no disk_hit.
        assert_eq!(lib.stats().kind(ArtifactKind::HoldingR).disk_hits, 0);
    }

    #[test]
    fn delta_carries_disk_provenance() {
        let lib = populated_library();
        let warm = NoiseModelLibrary::new();
        warm.load_cache_bytes(&lib.to_cache_bytes()).unwrap();
        let before = warm.stats();
        let tech = Technology::cmos130();
        let cell = Cell::inv(tech, 1.0);
        let mode = cell.holding_low_mode();
        let opts = CharacterizeOptions {
            grid: 5,
            ..Default::default()
        };
        warm.holding_resistance(&cell, &mode, &opts).unwrap();
        let d = LibraryStats::delta(&warm.stats(), &before);
        assert_eq!(d.disk_hits, 1);
        assert_eq!(d.kind(ArtifactKind::HoldingR).disk_hits, 1);
    }

    /// Synthetic libraries for the round-trip property: entries inserted
    /// directly into the maps, exercising arbitrary values without paying
    /// for characterization in each proptest case.
    fn synthetic_library(strengths: &[f64], rths: &[f64], holding: &[f64]) -> NoiseModelLibrary {
        let lib = NoiseModelLibrary::new();
        let tech = Technology::cmos130();
        let tech_fp = tech_fingerprint(&tech);
        for (i, &s) in strengths.iter().enumerate() {
            let ident = CellIdent {
                tech: tech.name.clone(),
                tech_fp,
                cell_tag: CellType::Inv.tag(),
                strength_bits: s.to_bits(),
            };
            let key = NrcKey {
                ident: ident.clone(),
                input_low: i % 2 == 0,
                width_bits: vec![(100.0 * PS).to_bits(), (200.0 * PS).to_bits()],
                solver: (0, 0),
            };
            let curve = NoiseRejectionCurve {
                widths: vec![100.0 * PS, 200.0 * PS],
                fail_heights: vec![0.3 + s, 0.2 + s],
                vdd: 1.2,
            };
            lib.nrcs
                .insert_if_absent(key, Entry::fresh(Arc::new(curve)));
            if let Some(&rth) = rths.get(i) {
                let tk = TheveninKey {
                    ident: ident.clone(),
                    rising: i % 2 == 1,
                    slew_bits: (50.0 * PS).to_bits(),
                    load_bits: [1, (10e-15 + s * 1e-15).to_bits(), 40.0f64.to_bits(), 0],
                    opts_fp: 7,
                };
                let th = TheveninDriver {
                    rth,
                    wave: SourceWaveform::Ramp {
                        v0: 0.0,
                        v1: 1.2,
                        t_start: 0.0,
                        t_rise: 80.0 * PS,
                    },
                    rising: i % 2 == 1,
                    vdd: 1.2,
                };
                lib.thevenins
                    .insert_if_absent(tk, Entry::fresh(Arc::new(th)));
            }
            if let Some(&r) = holding.get(i) {
                let ck = CellKey {
                    ident,
                    noisy_input: 0,
                    level_bits: vec![0u64, 1.2f64.to_bits()],
                    opts_fp: 11,
                };
                lib.holding.insert_if_absent(ck, Entry::fresh(r));
            }
        }
        lib
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// `save(load(save(lib))) == save(lib)` byte-for-byte, with no
        /// entries lost or rejected, on randomized synthetic libraries.
        #[test]
        fn prop_round_trip_is_lossless(
            strengths in proptest::collection::vec(0.5f64..8.0, 1..6),
            rths in proptest::collection::vec(10.0f64..5000.0, 1..6),
            holding in proptest::collection::vec(100.0f64..20000.0, 1..6),
        ) {
            let lib = synthetic_library(&strengths, &rths, &holding);
            let bytes = lib.to_cache_bytes();
            let reloaded = NoiseModelLibrary::new();
            let stats = reloaded.load_cache_bytes(&bytes).unwrap();
            prop_assert_eq!(stats.stale_rejected, 0);
            prop_assert_eq!(stats.loaded, lib.len());
            prop_assert_eq!(reloaded.len(), lib.len());
            prop_assert_eq!(reloaded.to_cache_bytes(), bytes);
        }
    }
}
