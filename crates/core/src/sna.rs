//! Full static-noise-analysis flow.
//!
//! The paper closes with "future work will focus on developing a complete
//! methodology for static noise analysis based on our macromodel" — this
//! module is that methodology, scaled to what a library can demonstrate: a
//! synthetic design generator (clusters with randomized geometry, drivers
//! and coupling), per-cluster worst-case evaluation with the macromodel
//! engine, and NRC-based sign-off classification at the victim receivers.
//!
//! [`run_sna`] walks the design serially; the `sna-flow` crate drives the
//! same per-cluster kernel ([`analyze_cluster`]) from a worker pool with a
//! shared [`NoiseModelLibrary`](crate::library::NoiseModelLibrary) for
//! full-chip runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sna_cells::{Cell, CellType, Technology};
use sna_spice::error::Result;
use sna_spice::units::{NS, PS};
use sna_spice::waveform::GlitchMetrics;

use crate::alignment::worst_case_alignment_batched;
use crate::cluster::{
    AggressorSpec, ClusterMacromodel, ClusterSpec, InputGlitch, MacromodelOptions, VictimSpec,
};
use crate::engine::simulate_macromodel;
use crate::frame::{constrained_worst_case, FrameOutcome};
use crate::library::NoiseModelLibrary;
use crate::nrc::NoiseRejectionCurve;
use crate::scenarios::m4_bus;

/// Sign-off classification of one victim net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Comfortably below the rejection curve.
    Pass,
    /// Passing, but within the configured guard band of the curve.
    MarginWarning,
    /// Above the curve: flagged as a functional failure risk.
    Fail,
}

/// One named cluster in a synthetic design.
#[derive(Debug, Clone)]
pub struct DesignCluster {
    /// Stable identifier (`netNNN`).
    pub name: String,
    /// The cluster description.
    pub spec: ClusterSpec,
}

/// A synthetic design: a bag of independent noise clusters.
#[derive(Debug, Clone)]
pub struct Design {
    /// Technology node shared by all clusters.
    pub tech: Technology,
    /// The clusters.
    pub clusters: Vec<DesignCluster>,
}

impl Design {
    /// Generate `n` random clusters with the given `seed`. Geometry spans
    /// 150–900 µm, 1–3 aggressors of discrete strength {×2, ×3, ×4, ×6},
    /// victims drawn from {INV, NAND2, NOR2} at {×1, ×1.5, ×2}, ~60 % of
    /// nets carrying a propagated glitch. Drive strengths are discrete, as
    /// in a real standard-cell library — which is what lets a design-level
    /// flow reuse per-cell characterization artifacts across clusters.
    pub fn random(tech: &Technology, n: usize, seed: u64) -> Design {
        const VICTIM_STRENGTHS: [f64; 3] = [1.0, 1.5, 2.0];
        const AGGRESSOR_STRENGTHS: [f64; 4] = [2.0, 3.0, 4.0, 6.0];
        const RECEIVER_STRENGTHS: [f64; 2] = [1.0, 2.0];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clusters = Vec::with_capacity(n);
        for i in 0..n {
            let n_agg = rng.gen_range(1..=3);
            let len_um = rng.gen_range(150.0..900.0);
            let victim_type = match rng.gen_range(0..3) {
                0 => CellType::Inv,
                1 => CellType::Nand2,
                _ => CellType::Nor2,
            };
            let strength = VICTIM_STRENGTHS[rng.gen_range(0..VICTIM_STRENGTHS.len())];
            let victim_cell = Cell::new(victim_type, tech.clone(), strength);
            let mode = victim_cell.holding_low_mode();
            let glitch = if rng.gen_bool(0.6) {
                Some(InputGlitch {
                    height: tech.vdd * rng.gen_range(0.4..0.9),
                    width: rng.gen_range(200.0..900.0) * PS,
                    t_peak: rng.gen_range(0.4..0.9) * NS,
                })
            } else {
                None
            };
            let aggressors = (0..n_agg)
                .map(|_| AggressorSpec {
                    cell: Cell::inv(
                        tech.clone(),
                        AGGRESSOR_STRENGTHS[rng.gen_range(0..AGGRESSOR_STRENGTHS.len())],
                    ),
                    rising: true,
                    input_slew: rng.gen_range(40.0..150.0) * PS,
                    switch_time: rng.gen_range(0.3..0.7) * NS,
                    receiver_cap: Cell::inv(
                        tech.clone(),
                        RECEIVER_STRENGTHS[rng.gen_range(0..RECEIVER_STRENGTHS.len())],
                    )
                    .input_capacitance(),
                    window: None,
                    mexcl_group: None,
                })
                .collect();
            let bus = m4_bus(tech, n_agg + 1, len_um, 12);
            clusters.push(DesignCluster {
                name: format!("net{i:03}"),
                spec: ClusterSpec {
                    tech: tech.clone(),
                    victim: VictimSpec {
                        cell: victim_cell,
                        mode,
                        glitch,
                        receiver: Cell::inv(tech.clone(), 1.0),
                        sensitivity: None,
                    },
                    aggressors,
                    bus,
                    char_opts: Default::default(),
                    t_stop: 3.0 * NS,
                    dt: 1.0 * PS,
                },
            });
        }
        Design {
            tech: tech.clone(),
            clusters,
        }
    }
}

/// Flow controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnaOptions {
    /// Run the worst-case alignment search per cluster (otherwise evaluate
    /// nominal timing only).
    pub align_worst_case: bool,
    /// Timing half-window for the alignment search (s).
    pub align_window: f64,
    /// Guard band (V) below the NRC threshold that triggers
    /// [`Verdict::MarginWarning`].
    pub margin_band: f64,
    /// Abort the whole run on the first per-cluster engine/build failure
    /// instead of downgrading it to a [`SkippedCluster`] diagnostic.
    /// Off by default: a production flow reports the bad net and keeps
    /// going; tests opt in to catch regressions.
    pub strict: bool,
    /// Window sample points per constrained aggressor in the FRAME
    /// candidate enumeration (clusters with windows/mexcl groups only).
    pub frame_grid: usize,
    /// Evaluate every structural FRAME candidate instead of pruning
    /// infeasible ones — the exhaustive baseline the bench and the CI
    /// byte-identity gate compare against.
    pub frame_exhaustive: bool,
}

impl Default for SnaOptions {
    fn default() -> Self {
        Self {
            align_worst_case: false,
            align_window: 400.0 * PS,
            margin_band: 0.1,
            strict: false,
            frame_grid: 4,
            frame_exhaustive: false,
        }
    }
}

/// Per-cluster outcome.
#[derive(Debug, Clone)]
pub struct ClusterFinding {
    /// Cluster name.
    pub name: String,
    /// Glitch metrics at the victim receiver input.
    pub receiver_metrics: GlitchMetrics,
    /// NRC margin (V) at the receiver (negative = failing).
    pub margin: f64,
    /// Classification.
    pub verdict: Verdict,
    /// Constrained (FRAME) outcome, present when the cluster carries
    /// switching-window or mutual-exclusion constraints. The verdict
    /// stays keyed to the pessimistic `margin`; this reports how much of
    /// that pessimism the constraints recover.
    pub constrained: Option<FrameOutcome>,
}

/// A cluster the flow could not analyze (macromodel build or engine
/// failure), downgraded to a diagnostic in non-strict runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCluster {
    /// Cluster name.
    pub name: String,
    /// Human-readable failure description (the underlying error display).
    pub reason: String,
}

/// Design-level report.
#[derive(Debug, Clone, Default)]
pub struct NoiseReport {
    /// Per-cluster findings, design order.
    pub findings: Vec<ClusterFinding>,
    /// Clusters skipped with a diagnostic (empty in strict runs, which
    /// abort instead).
    pub skipped: Vec<SkippedCluster>,
}

impl NoiseReport {
    /// Count of clusters with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.findings.iter().filter(|f| f.verdict == v).count()
    }

    /// Findings sorted worst-margin-first. NaN margins (which should not
    /// occur, but must not panic a sign-off run) sort last via
    /// [`f64::total_cmp`].
    pub fn worst_first(&self) -> Vec<&ClusterFinding> {
        let mut sorted: Vec<&ClusterFinding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| a.margin.total_cmp(&b.margin));
        sorted
    }

    /// Total clusters accounted for (analyzed + skipped).
    pub fn total(&self) -> usize {
        self.findings.len() + self.skipped.len()
    }
}

/// Evaluate one cluster: build its macromodel (drawing per-cell artifacts
/// from `library`), simulate (optionally at the worst-case alignment), and
/// classify the receiver glitch against `nrc`.
///
/// This is the per-net kernel both [`run_sna`] and the parallel `sna-flow`
/// driver share; it is deterministic in its inputs, so any scheduling of
/// clusters across threads yields identical findings.
///
/// # Errors
///
/// Propagates macromodel build / engine failures for the caller to either
/// abort on (strict) or downgrade to a [`SkippedCluster`].
pub fn analyze_cluster(
    cluster: &DesignCluster,
    nrc: &NoiseRejectionCurve,
    opts: &SnaOptions,
    mm_opts: &MacromodelOptions,
    library: &NoiseModelLibrary,
) -> Result<ClusterFinding> {
    let model = ClusterMacromodel::build_with_library(&cluster.spec, mm_opts, library)?;
    let waves = if opts.align_worst_case {
        let res = worst_case_alignment_batched(&model, opts.align_window, mm_opts.backend)?;
        let timed = model.with_timing(&res.switch_times, res.glitch_peak_time);
        simulate_macromodel(&timed)?
    } else {
        simulate_macromodel(&model)?
    };
    let rm = waves.receiver.glitch_metrics(model.q_out);
    let margin = nrc.margin(rm.width, rm.peak);
    let verdict = if margin < 0.0 {
        Verdict::Fail
    } else if margin < opts.margin_band {
        Verdict::MarginWarning
    } else {
        Verdict::Pass
    };
    // Constrained (FRAME) pass: only clusters that carry constraints pay
    // for the enumeration; everything else reports pessimistic-only.
    let constrained = if cluster.spec.has_frame_constraints() {
        Some(constrained_worst_case(
            &model,
            nrc,
            opts.frame_grid,
            opts.frame_exhaustive,
            mm_opts.backend,
        )?)
    } else {
        None
    };
    Ok(ClusterFinding {
        name: cluster.name.clone(),
        receiver_metrics: rm,
        margin,
        verdict,
        constrained,
    })
}

/// Run static noise analysis over a design, serially.
///
/// Per-cluster engine/build failures are downgraded to
/// [`NoiseReport::skipped`] diagnostics unless [`SnaOptions::strict`] is
/// set. For multi-threaded runs use `sna_flow::run_sna_parallel`, which
/// produces an identical report.
///
/// # Errors
///
/// In strict mode, propagates the first per-cluster failure (in design
/// order).
pub fn run_sna(
    design: &Design,
    nrc: &NoiseRejectionCurve,
    opts: &SnaOptions,
) -> Result<NoiseReport> {
    // One characterization library for the whole design: clusters sharing a
    // (cell, drive-state, load-bucket) reuse each other's artifacts.
    let library = NoiseModelLibrary::new();
    let mm_opts = MacromodelOptions::default();
    let mut report = NoiseReport::default();
    for cl in &design.clusters {
        match analyze_cluster(cl, nrc, opts, &mm_opts, &library) {
            Ok(finding) => report.findings.push(finding),
            Err(e) if opts.strict => return Err(e),
            Err(e) => report.skipped.push(SkippedCluster {
                name: cl.name.clone(),
                reason: e.to_string(),
            }),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrc::characterize_nrc;

    #[test]
    fn random_design_is_reproducible() {
        let tech = Technology::cmos130();
        let d1 = Design::random(&tech, 5, 42);
        let d2 = Design::random(&tech, 5, 42);
        assert_eq!(d1.clusters.len(), 5);
        for (a, b) in d1.clusters.iter().zip(&d2.clusters) {
            assert_eq!(a.spec.bus.wires[0].length, b.spec.bus.wires[0].length);
            assert_eq!(a.spec.aggressors.len(), b.spec.aggressors.len());
        }
        let d3 = Design::random(&tech, 5, 43);
        let same = d1
            .clusters
            .iter()
            .zip(&d3.clusters)
            .all(|(a, b)| a.spec.bus.wires[0].length == b.spec.bus.wires[0].length);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn random_design_reuses_discrete_cells() {
        // Drive strengths come from a discrete menu, so a modest design
        // must repeat (cell type, strength) pairs — the precondition for
        // cross-cluster characterization reuse.
        let tech = Technology::cmos130();
        let d = Design::random(&tech, 12, 42);
        let mut victims: Vec<(&'static str, u64)> = d
            .clusters
            .iter()
            .map(|c| {
                (
                    c.spec.victim.cell.cell_type.tag(),
                    c.spec.victim.cell.strength.to_bits(),
                )
            })
            .collect();
        victims.sort();
        victims.dedup();
        assert!(
            victims.len() < d.clusters.len(),
            "12 clusters over a 9-entry victim menu must collide"
        );
    }

    #[test]
    fn sna_flow_classifies_a_small_design() {
        let tech = Technology::cmos130();
        let design = Design::random(&tech, 4, 7);
        let nrc = characterize_nrc(
            &Cell::inv(tech.clone(), 1.0),
            true,
            &[100.0 * PS, 300.0 * PS, 900.0 * PS],
        )
        .unwrap();
        let report = run_sna(&design, &nrc, &SnaOptions::default()).unwrap();
        assert_eq!(report.findings.len(), 4);
        assert!(report.skipped.is_empty());
        assert_eq!(report.total(), 4);
        let total = report.count(Verdict::Pass)
            + report.count(Verdict::MarginWarning)
            + report.count(Verdict::Fail);
        assert_eq!(total, 4);
        // Margins sorted worst-first are non-decreasing.
        let worst = report.worst_first();
        for pair in worst.windows(2) {
            assert!(pair[0].margin <= pair[1].margin);
        }
    }

    #[test]
    fn invalid_cluster_is_skipped_not_fatal() {
        let tech = Technology::cmos130();
        let mut design = Design::random(&tech, 3, 11);
        // Sabotage the middle cluster: an empty time window fails
        // validation inside the macromodel build.
        design.clusters[1].spec.dt = 0.0;
        let nrc = characterize_nrc(
            &Cell::inv(tech.clone(), 1.0),
            true,
            &[100.0 * PS, 300.0 * PS, 900.0 * PS],
        )
        .unwrap();
        let report = run_sna(&design, &nrc, &SnaOptions::default()).unwrap();
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].name, "net001");
        assert!(
            report.skipped[0].reason.contains("dt"),
            "reason should carry the underlying error: {}",
            report.skipped[0].reason
        );
        // Strict mode still aborts, for tests that want hard failures.
        let strict = SnaOptions {
            strict: true,
            ..Default::default()
        };
        assert!(run_sna(&design, &nrc, &strict).is_err());
    }

    #[test]
    fn worst_first_survives_nan_margins() {
        fn finding(name: &str, margin: f64) -> ClusterFinding {
            ClusterFinding {
                name: name.into(),
                receiver_metrics: GlitchMetrics {
                    peak: 0.1,
                    polarity: 1.0,
                    peak_time: 1e-9,
                    width: 3e-10,
                    area: 1e-11,
                },
                margin,
                verdict: Verdict::Pass,
                constrained: None,
            }
        }
        let report = NoiseReport {
            findings: vec![
                finding("a", 0.2),
                finding("nan", f64::NAN),
                finding("b", -0.4),
            ],
            skipped: Vec::new(),
        };
        // Previously this panicked on `partial_cmp(...).expect(...)`.
        let worst = report.worst_first();
        assert_eq!(worst[0].name, "b");
        assert_eq!(worst[1].name, "a");
        assert!(worst[2].margin.is_nan(), "NaN sorts last under total_cmp");
    }
}
