//! Full static-noise-analysis flow.
//!
//! The paper closes with "future work will focus on developing a complete
//! methodology for static noise analysis based on our macromodel" — this
//! module is that methodology, scaled to what a library can demonstrate: a
//! synthetic design generator (clusters with randomized geometry, drivers
//! and coupling), per-cluster worst-case evaluation with the macromodel
//! engine, and NRC-based sign-off classification at the victim receivers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sna_cells::{Cell, CellType, Technology};
use sna_spice::error::Result;
use sna_spice::units::{NS, PS};
use sna_spice::waveform::GlitchMetrics;

use crate::alignment::worst_case_alignment;
use crate::cluster::{AggressorSpec, ClusterMacromodel, ClusterSpec, InputGlitch, VictimSpec};
use crate::engine::simulate_macromodel;
use crate::nrc::NoiseRejectionCurve;
use crate::scenarios::m4_bus;

/// Sign-off classification of one victim net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Comfortably below the rejection curve.
    Pass,
    /// Passing, but within the configured guard band of the curve.
    MarginWarning,
    /// Above the curve: flagged as a functional failure risk.
    Fail,
}

/// One named cluster in a synthetic design.
#[derive(Debug, Clone)]
pub struct DesignCluster {
    /// Stable identifier (`netNNN`).
    pub name: String,
    /// The cluster description.
    pub spec: ClusterSpec,
}

/// A synthetic design: a bag of independent noise clusters.
#[derive(Debug, Clone)]
pub struct Design {
    /// Technology node shared by all clusters.
    pub tech: Technology,
    /// The clusters.
    pub clusters: Vec<DesignCluster>,
}

impl Design {
    /// Generate `n` random clusters with the given `seed`. Geometry spans
    /// 150–900 µm, 1–3 aggressors of strength ×2–×6, victims drawn from
    /// {INV, NAND2, NOR2} at ×1–×2, ~60 % of nets carrying a propagated
    /// glitch.
    pub fn random(tech: &Technology, n: usize, seed: u64) -> Design {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clusters = Vec::with_capacity(n);
        for i in 0..n {
            let n_agg = rng.gen_range(1..=3);
            let len_um = rng.gen_range(150.0..900.0);
            let victim_type = match rng.gen_range(0..3) {
                0 => CellType::Inv,
                1 => CellType::Nand2,
                _ => CellType::Nor2,
            };
            let victim_cell = Cell::new(victim_type, tech.clone(), rng.gen_range(1.0..2.0));
            let mode = victim_cell.holding_low_mode();
            let glitch = if rng.gen_bool(0.6) {
                Some(InputGlitch {
                    height: tech.vdd * rng.gen_range(0.4..0.9),
                    width: rng.gen_range(200.0..900.0) * PS,
                    t_peak: rng.gen_range(0.4..0.9) * NS,
                })
            } else {
                None
            };
            let aggressors = (0..n_agg)
                .map(|_| AggressorSpec {
                    cell: Cell::inv(tech.clone(), rng.gen_range(2.0..6.0)),
                    rising: true,
                    input_slew: rng.gen_range(40.0..150.0) * PS,
                    switch_time: rng.gen_range(0.3..0.7) * NS,
                    receiver_cap: Cell::inv(tech.clone(), rng.gen_range(1.0..2.0))
                        .input_capacitance(),
                })
                .collect();
            let bus = m4_bus(tech, n_agg + 1, len_um, 12);
            clusters.push(DesignCluster {
                name: format!("net{i:03}"),
                spec: ClusterSpec {
                    tech: tech.clone(),
                    victim: VictimSpec {
                        cell: victim_cell,
                        mode,
                        glitch,
                        receiver: Cell::inv(tech.clone(), 1.0),
                    },
                    aggressors,
                    bus,
                    char_opts: Default::default(),
                    t_stop: 3.0 * NS,
                    dt: 1.0 * PS,
                },
            });
        }
        Design {
            tech: tech.clone(),
            clusters,
        }
    }
}

/// Flow controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnaOptions {
    /// Run the worst-case alignment search per cluster (otherwise evaluate
    /// nominal timing only).
    pub align_worst_case: bool,
    /// Timing half-window for the alignment search (s).
    pub align_window: f64,
    /// Guard band (V) below the NRC threshold that triggers
    /// [`Verdict::MarginWarning`].
    pub margin_band: f64,
}

impl Default for SnaOptions {
    fn default() -> Self {
        Self {
            align_worst_case: false,
            align_window: 400.0 * PS,
            margin_band: 0.1,
        }
    }
}

/// Per-cluster outcome.
#[derive(Debug, Clone)]
pub struct ClusterFinding {
    /// Cluster name.
    pub name: String,
    /// Glitch metrics at the victim receiver input.
    pub receiver_metrics: GlitchMetrics,
    /// NRC margin (V) at the receiver (negative = failing).
    pub margin: f64,
    /// Classification.
    pub verdict: Verdict,
}

/// Design-level report.
#[derive(Debug, Clone)]
pub struct NoiseReport {
    /// Per-cluster findings, design order.
    pub findings: Vec<ClusterFinding>,
}

impl NoiseReport {
    /// Count of clusters with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.findings.iter().filter(|f| f.verdict == v).count()
    }

    /// Findings sorted worst-margin-first.
    pub fn worst_first(&self) -> Vec<&ClusterFinding> {
        let mut sorted: Vec<&ClusterFinding> = self.findings.iter().collect();
        sorted.sort_by(|a, b| a.margin.partial_cmp(&b.margin).expect("finite margins"));
        sorted
    }
}

/// Run static noise analysis over a design.
///
/// # Errors
///
/// Propagates macromodel build / engine failures (a production flow would
/// downgrade these to per-net diagnostics; here they abort so tests catch
/// regressions).
pub fn run_sna(
    design: &Design,
    nrc: &NoiseRejectionCurve,
    opts: &SnaOptions,
) -> Result<NoiseReport> {
    // One characterization library for the whole design: clusters sharing a
    // (cell, drive-state, load-bucket) reuse each other's artifacts.
    let mut library = crate::library::NoiseModelLibrary::new();
    let mm_opts = crate::cluster::MacromodelOptions::default();
    let mut findings = Vec::with_capacity(design.clusters.len());
    for cl in &design.clusters {
        let model = ClusterMacromodel::build_with_library(&cl.spec, &mm_opts, &mut library)?;
        let waves = if opts.align_worst_case {
            let res = worst_case_alignment(&model, opts.align_window)?;
            let timed = model.with_timing(&res.switch_times, res.glitch_peak_time);
            simulate_macromodel(&timed)?
        } else {
            simulate_macromodel(&model)?
        };
        let rm = waves.receiver.glitch_metrics(model.q_out);
        let margin = nrc.margin(rm.width, rm.peak);
        let verdict = if margin < 0.0 {
            Verdict::Fail
        } else if margin < opts.margin_band {
            Verdict::MarginWarning
        } else {
            Verdict::Pass
        };
        findings.push(ClusterFinding {
            name: cl.name.clone(),
            receiver_metrics: rm,
            margin,
            verdict,
        });
    }
    Ok(NoiseReport { findings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nrc::characterize_nrc;

    #[test]
    fn random_design_is_reproducible() {
        let tech = Technology::cmos130();
        let d1 = Design::random(&tech, 5, 42);
        let d2 = Design::random(&tech, 5, 42);
        assert_eq!(d1.clusters.len(), 5);
        for (a, b) in d1.clusters.iter().zip(&d2.clusters) {
            assert_eq!(a.spec.bus.wires[0].length, b.spec.bus.wires[0].length);
            assert_eq!(a.spec.aggressors.len(), b.spec.aggressors.len());
        }
        let d3 = Design::random(&tech, 5, 43);
        let same = d1
            .clusters
            .iter()
            .zip(&d3.clusters)
            .all(|(a, b)| a.spec.bus.wires[0].length == b.spec.bus.wires[0].length);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn sna_flow_classifies_a_small_design() {
        let tech = Technology::cmos130();
        let design = Design::random(&tech, 4, 7);
        let nrc = characterize_nrc(
            &Cell::inv(tech.clone(), 1.0),
            true,
            &[100.0 * PS, 300.0 * PS, 900.0 * PS],
        )
        .unwrap();
        let report = run_sna(&design, &nrc, &SnaOptions::default()).unwrap();
        assert_eq!(report.findings.len(), 4);
        let total = report.count(Verdict::Pass)
            + report.count(Verdict::MarginWarning)
            + report.count(Verdict::Fail);
        assert_eq!(total, 4);
        // Margins sorted worst-first are non-decreasing.
        let worst = report.worst_first();
        for pair in worst.windows(2) {
            assert!(pair[0].margin <= pair[1].margin);
        }
    }
}
