//! Iterative linear-Thevenin victim model (Zolotov et al., ICCAD 2002).
//!
//! The strongest pre-existing attempt the paper discusses: keep the victim
//! driver linear — a resistance plus a *pulsed voltage source* — but pick
//! the pulse by iteration so the linear model reproduces (some of) the
//! non-linear cell's behavior:
//!
//! 1. simulate the cluster with the victim as `R_hold` to its quiescent
//!    level;
//! 2. from the resulting victim waveform `y(t)`, evaluate the *real* cell
//!    current `I_DC(V_in(t), y(t))` from the load-curve table and choose
//!    the EMF `e(t) = y(t) − R_hold·I_DC(...)` that would make the linear
//!    model draw the same current at the same voltage;
//! 3. re-simulate with `e(t)`; repeat a fixed number of times.
//!
//! The fixed, small iteration count (the published flow used very few to
//! stay affordable) means the lagged Picard iteration has not converged on
//! strongly non-linear clusters — which is exactly the residual −18 % /
//! −20 % error the paper quotes for this approach.

use serde::{Deserialize, Serialize};
use sna_spice::devices::SourceWaveform;
use sna_spice::error::Result;
use sna_spice::waveform::Waveform;

use crate::cluster::ClusterMacromodel;
use crate::engine::NoiseWaveforms;
use crate::superposition::simulate_linear_cluster;

/// Controls for the iterative-Thevenin baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZolotovOptions {
    /// Number of linear re-simulations (the published flow used 1–2
    /// refinements after the initial holding-resistance pass).
    pub iterations: usize,
}

impl Default for ZolotovOptions {
    fn default() -> Self {
        Self { iterations: 2 }
    }
}

/// Run the iterative pulsed-Thevenin baseline.
///
/// # Errors
///
/// Propagates linear-solve failures.
pub fn simulate_zolotov(
    model: &ClusterMacromodel,
    opts: &ZolotovOptions,
) -> Result<NoiseWaveforms> {
    let q_out = model.q_out;
    let r_hold = model.r_hold;
    let g_hold = 1.0 / r_hold;
    let vic = model.victim_dp_port();
    let rcv = model.victim_receiver_port();
    // Pass 0: plain holding resistance to the quiescent level.
    let mut emf: Option<Waveform> = None;
    let mut last = simulate_linear_cluster(model, g_hold, |_| q_out, true)?;
    for _ in 0..opts.iterations {
        let (times, series) = &last;
        // Refit the pulsed EMF from the latest victim waveform.
        let values: Vec<f64> = times
            .iter()
            .zip(&series[vic])
            .map(|(&t, &y)| {
                let i_cell = model.load_curve.table.value(model.vin(t), y);
                y - r_hold * i_cell
            })
            .collect();
        let e = Waveform::from_samples(times.clone(), values).expect("monotone time axis");
        let src = SourceWaveform::Sampled(e.clone());
        emf = Some(e);
        last = simulate_linear_cluster(model, g_hold, |t| src.eval(t), true)?;
    }
    let _ = emf;
    let (times, series) = last;
    let mk =
        |s: &[f64]| Waveform::from_samples(times.clone(), s.to_vec()).expect("monotone time axis");
    Ok(NoiseWaveforms {
        dp: mk(&series[vic]),
        receiver: mk(&series[rcv]),
        aggressor_dps: (0..model.thevenins.len())
            .map(|k| mk(&series[model.aggressor_port(k)]))
            .collect(),
        newton_iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterMacromodel;
    use crate::engine::simulate_macromodel;
    use crate::scenarios::table1_spec;
    use crate::superposition::simulate_superposition;

    #[test]
    fn zolotov_lands_between_superposition_and_engine() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let eng = simulate_macromodel(&model).unwrap().dp_metrics(model.q_out);
        let sup = simulate_superposition(&model)
            .unwrap()
            .dp_metrics(model.q_out);
        let zol = simulate_zolotov(&model, &ZolotovOptions::default())
            .unwrap()
            .dp_metrics(model.q_out);
        // Iterating the Thevenin model recovers part of the non-linear
        // deficit: better than plain superposition, not as good as the
        // non-linear engine.
        assert!(
            zol.peak > sup.peak,
            "zolotov {} <= superposition {}",
            zol.peak,
            sup.peak
        );
        assert!((zol.peak - eng.peak).abs() >= -1e-12, "sanity");
    }

    #[test]
    fn more_iterations_approach_the_engine() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        let eng = simulate_macromodel(&model).unwrap().dp_metrics(model.q_out);
        let z1 = simulate_zolotov(&model, &ZolotovOptions { iterations: 1 })
            .unwrap()
            .dp_metrics(model.q_out);
        let z6 = simulate_zolotov(&model, &ZolotovOptions { iterations: 6 })
            .unwrap()
            .dp_metrics(model.q_out);
        let e1 = (z1.peak - eng.peak).abs();
        let e6 = (z6.peak - eng.peak).abs();
        assert!(
            e6 <= e1 + 1e-6,
            "iteration did not help: |err(1)|={e1}, |err(6)|={e6}"
        );
    }
}
