//! Noise-cluster specification and the Figure-1 macromodel.
//!
//! A *noise cluster* is "a victim net and its neighboring coupled
//! aggressors". [`ClusterSpec`] describes one physically (cells, drive
//! states, wire geometry, switching events); [`ClusterMacromodel::build`]
//! performs the paper's pre-characterization and reduction steps and yields
//! the macromodel of Figure 1:
//!
//! * aggressor drivers → Thevenin equivalents (`V_TH` saturated ramp behind
//!   `R_TH`), per Dartu–Pileggi;
//! * coupled interconnect → moment-matched multiport reduction retaining
//!   the victim driving point `DP_Vic`, each aggressor driving point, and
//!   the victim receiver tap as ports;
//! * victim receiver → its input capacitance (absorbed before reduction);
//! * victim driver → the non-linear VCCS `I_DC = f(V_in, V_out)` of Eq. (1)
//!   plus its lumped output/Miller capacitances.

use serde::{Deserialize, Serialize};
use sna_cells::characterize::{
    characterize_load_curve, characterize_propagated_noise_with, characterize_thevenin_with,
    holding_resistance, CharacterizeOptions, LoadCurve, PropagatedNoiseTable, TheveninDriver,
    TheveninLoad,
};
use sna_cells::{Cell, DriverMode, Technology};
use sna_interconnect::CoupledBus;
use sna_obs::{phase_span, Phase};

use crate::library::NoiseModelLibrary;
use sna_mor::{
    port_admittance_moments, prima_reduce_with, PiModel, ReducedSystem, DEFAULT_Q, DEFAULT_S0,
};
use sna_spice::backend::BackendKind;
use sna_spice::devices::SourceWaveform;
use sna_spice::error::{Error, Result};
use sna_spice::netlist::Circuit;
use sna_spice::solver::SolverKind;
use sna_spice::units::PS;

/// A triangular noise glitch arriving at the victim driver's input
/// (propagated from an upstream stage).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputGlitch {
    /// Magnitude of the excursion from the quiescent input level (V).
    pub height: f64,
    /// Base width of the triangle (s).
    pub width: f64,
    /// Time of the glitch peak (s).
    pub t_peak: f64,
}

impl InputGlitch {
    /// The glitch as a source waveform around the quiescent level `q_in`,
    /// heading toward the opposite rail.
    pub fn waveform(&self, q_in: f64, vdd: f64) -> SourceWaveform {
        let sign = if q_in > 0.5 * vdd { -1.0 } else { 1.0 };
        SourceWaveform::TriangleGlitch {
            v_base: q_in,
            v_peak: q_in + sign * self.height,
            t_start: self.t_peak - 0.5 * self.width,
            t_rise: 0.5 * self.width,
            t_fall: 0.5 * self.width,
        }
    }
}

/// A timing window `[t_min, t_max]` within which an event may occur (s).
///
/// On an aggressor it bounds the switch time (FRAME-style STA arrival
/// window); on a victim it bounds the *sensitivity* interval during which
/// injected noise can matter (e.g. the latching window of a downstream
/// flop). A candidate alignment placing an aggressor edge that cannot
/// overlap the victim's sensitivity window is infeasible and pruned
/// before simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchingWindow {
    /// Earliest event time (s).
    pub t_min: f64,
    /// Latest event time (s).
    pub t_max: f64,
}

impl SwitchingWindow {
    /// Construct a window; `t_min` and `t_max` may coincide (a fixed event).
    pub fn new(t_min: f64, t_max: f64) -> Self {
        Self { t_min, t_max }
    }

    /// Whether the window is well-formed (finite, ordered).
    pub fn is_valid(&self) -> bool {
        self.t_min.is_finite() && self.t_max.is_finite() && self.t_min <= self.t_max
    }

    /// Whether an edge starting at `t` with transition duration `slew`
    /// can overlap this window: `[t, t + slew] ∩ [t_min, t_max] ≠ ∅`.
    pub fn overlaps_edge(&self, t: f64, slew: f64) -> bool {
        t <= self.t_max && t + slew >= self.t_min
    }
}

/// One aggressor of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggressorSpec {
    /// Driver cell (e.g. an INV ×4).
    pub cell: Cell,
    /// Whether the aggressor output rises.
    pub rising: bool,
    /// Slew of the ramp at the aggressor driver's input (s).
    pub input_slew: f64,
    /// Cluster time at which the aggressor's input starts moving (s).
    pub switch_time: f64,
    /// Input capacitance of the aggressor's receiver, loading the far end
    /// of its wire (F).
    pub receiver_cap: f64,
    /// Optional switching window constraining when this aggressor may
    /// switch. `None` means unconstrained (always switches at
    /// `switch_time`; the pessimistic assumption).
    pub window: Option<SwitchingWindow>,
    /// Optional mutual-exclusion group id: at most one aggressor of a
    /// group may switch in any feasible alignment (e.g. outputs of the
    /// same one-hot decoder). `None` means no logical constraint.
    pub mexcl_group: Option<u32>,
}

impl AggressorSpec {
    /// Whether this aggressor carries any FRAME constraint (window or
    /// mutual-exclusion membership).
    pub fn is_constrained(&self) -> bool {
        self.window.is_some() || self.mexcl_group.is_some()
    }
}

/// The victim side of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimSpec {
    /// Victim driver cell (the paper uses a 2-input NAND).
    pub cell: Cell,
    /// Quiescent drive state (which input is noisy, what the output holds).
    pub mode: DriverMode,
    /// Optional propagating glitch at the driver input.
    pub glitch: Option<InputGlitch>,
    /// Receiver cell at the victim's far end (its input capacitance loads
    /// the net; NRC checks use it too).
    pub receiver: Cell,
    /// Optional sensitivity window: the interval during which the victim's
    /// receiver actually samples (latches) the net. Aggressor edges that
    /// cannot overlap it are pruned from the constrained analysis. `None`
    /// means always sensitive.
    pub sensitivity: Option<SwitchingWindow>,
}

/// Full physical description of a noise cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Technology node (victim and aggressors must share it).
    pub tech: Technology,
    /// The victim.
    pub victim: VictimSpec,
    /// The aggressors; `bus` wire `k + 1` belongs to aggressor `k`.
    pub aggressors: Vec<AggressorSpec>,
    /// Wire geometry: wire 0 is the victim net.
    pub bus: CoupledBus,
    /// Characterization controls.
    pub char_opts: CharacterizeOptions,
    /// Simulation horizon (s).
    pub t_stop: f64,
    /// Simulation step (s).
    pub dt: f64,
}

impl ClusterSpec {
    /// Validate the wiring/aggressor correspondence.
    ///
    /// # Errors
    ///
    /// Fails when the bus wire count is not `aggressors + 1` or the window
    /// is empty.
    pub fn validate(&self) -> Result<()> {
        if self.bus.wires.len() != self.aggressors.len() + 1 {
            return Err(Error::InvalidCircuit(format!(
                "bus has {} wires but cluster needs {} (victim + {} aggressors)",
                self.bus.wires.len(),
                self.aggressors.len() + 1,
                self.aggressors.len()
            )));
        }
        if !(self.dt > 0.0 && self.t_stop > self.dt) {
            return Err(Error::InvalidAnalysis(format!(
                "bad cluster window: dt={}, t_stop={}",
                self.dt, self.t_stop
            )));
        }
        for (k, agg) in self.aggressors.iter().enumerate() {
            if let Some(w) = &agg.window {
                if !w.is_valid() {
                    return Err(Error::InvalidAnalysis(format!(
                        "aggressor {k} switching window [{}, {}] is invalid \
                         (need finite t_min <= t_max)",
                        w.t_min, w.t_max
                    )));
                }
            }
        }
        if let Some(w) = &self.victim.sensitivity {
            if !w.is_valid() {
                return Err(Error::InvalidAnalysis(format!(
                    "victim sensitivity window [{}, {}] is invalid \
                     (need finite t_min <= t_max)",
                    w.t_min, w.t_max
                )));
            }
        }
        Ok(())
    }

    /// Whether any aggressor carries a window or mutual-exclusion
    /// constraint (i.e. whether a constrained FRAME analysis would differ
    /// from the pessimistic one).
    pub fn has_frame_constraints(&self) -> bool {
        self.aggressors.iter().any(AggressorSpec::is_constrained)
    }

    /// Total capacitance hanging on the victim net (wire ground + coupling
    /// + receiver + driver output), used as the characterization load.
    pub fn victim_total_cap(&self, c_out_driver: f64) -> f64 {
        let wire = &self.bus.wires[0];
        let mut total = wire.total_cg() + self.victim.receiver.input_capacitance() + c_out_driver;
        for k in 0..self.aggressors.len() {
            total += self.bus.total_coupling(0, k + 1);
        }
        total
    }
}

/// Port roles within the reduced interconnect model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortRole {
    /// The victim driving point (`DP_Vic` in Figure 1).
    VictimDp,
    /// Driving point of aggressor `k`.
    AggressorDp(usize),
    /// The victim receiver tap (far end of the victim wire).
    VictimReceiver,
}

/// Modeling switches for [`ClusterMacromodel::build_with`] — the ablation
/// knobs of DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacromodelOptions {
    /// Lump the victim driver's characterized output + Miller capacitance
    /// at `DP_Vic` (default). Disabling this is the classic source of
    /// optimistic noise estimates — kept as an ablation.
    pub include_driver_caps: bool,
    /// Block-moment count of the interconnect reduction (PRIMA `q`).
    pub reduction_order: usize,
    /// Expansion point of the reduction (rad/s).
    pub expansion_point: f64,
    /// Linear-solver backend for the reduction's shifted-system solves
    /// (dense, sparse, or dimension-based auto selection). Also forwarded
    /// to every characterization analysis this build runs.
    pub solver: SolverKind,
    /// Compute backend for the K-lane batched characterization sweeps
    /// (scalar lane-outer or batched lane-inner; bit-identical results).
    pub backend: BackendKind,
}

impl Default for MacromodelOptions {
    fn default() -> Self {
        Self {
            include_driver_caps: true,
            reduction_order: DEFAULT_Q,
            expansion_point: DEFAULT_S0,
            solver: SolverKind::Auto,
            backend: BackendKind::default(),
        }
    }
}

/// The built noise-cluster macromodel (Figure 1 of the paper).
#[derive(Debug, Clone)]
pub struct ClusterMacromodel {
    /// The originating spec.
    pub spec: ClusterSpec,
    /// Reduced coupled interconnect (receiver caps and victim driver
    /// parasitics absorbed).
    pub reduced: ReducedSystem,
    /// Role of each reduced-system port, in port order.
    pub port_roles: Vec<PortRole>,
    /// The victim driver's Eq. (1) table with parasitics.
    pub load_curve: LoadCurve,
    /// Thevenin model per aggressor, already shifted to its switch time.
    pub thevenins: Vec<TheveninDriver>,
    /// Victim holding resistance (Ω) — for the baselines.
    pub r_hold: f64,
    /// Propagated-noise table — for the superposition baseline.
    pub prop_table: PropagatedNoiseTable,
    /// The victim-input waveform (quiescent or glitching).
    pub vin_wave: SourceWaveform,
    /// Quiescent victim input level (V).
    pub q_in: f64,
    /// Quiescent victim output level (V).
    pub q_out: f64,
    /// Miller feed-through capacitance the engine injects
    /// `c · dV_in/dt` with (zeroed when driver caps are ablated).
    pub c_miller_injection: f64,
}

impl ClusterMacromodel {
    /// Run the full pre-characterization + reduction pipeline with default
    /// modeling options.
    ///
    /// # Errors
    ///
    /// Propagates validation, characterization, and reduction failures.
    pub fn build(spec: &ClusterSpec) -> Result<Self> {
        Self::build_with(spec, &MacromodelOptions::default())
    }

    /// [`ClusterMacromodel::build`] with explicit modeling options (used by
    /// the ablation studies).
    ///
    /// # Errors
    ///
    /// Propagates validation, characterization, and reduction failures.
    pub fn build_with(spec: &ClusterSpec, options: &MacromodelOptions) -> Result<Self> {
        Self::build_impl(spec, options, None)
    }

    /// [`ClusterMacromodel::build`] drawing the per-cell artifacts from a
    /// shared [`NoiseModelLibrary`]: load curves and holding resistances
    /// are reused exactly, propagated-noise tables per ×1.2 load bucket.
    /// This is how a design-level flow amortizes characterization. The
    /// library is taken by `&` — it is internally synchronized, so a
    /// parallel flow can share one instance across worker threads.
    ///
    /// # Errors
    ///
    /// Propagates validation, characterization, and reduction failures.
    pub fn build_with_library(
        spec: &ClusterSpec,
        options: &MacromodelOptions,
        library: &NoiseModelLibrary,
    ) -> Result<Self> {
        Self::build_impl(spec, options, Some(library))
    }

    fn build_impl(
        spec: &ClusterSpec,
        options: &MacromodelOptions,
        library: Option<&NoiseModelLibrary>,
    ) -> Result<Self> {
        spec.validate()?;
        let _t = phase_span(Phase::Characterize);
        let vdd = spec.tech.vdd;
        // The modeling options' solver/backend selections apply to the
        // characterization analyses too, not just the reduction.
        let mut char_opts = spec.char_opts;
        char_opts.newton.solver = options.solver;
        char_opts.backend = options.backend;
        // --- Victim driver characterization (Eq. 1 + parasitics).
        let load_curve = match library {
            Some(lib) => {
                (*lib.load_curve(&spec.victim.cell, &spec.victim.mode, &char_opts)?).clone()
            }
            None => characterize_load_curve(&spec.victim.cell, &spec.victim.mode, &char_opts)?,
        };
        let r_hold = match library {
            Some(lib) => {
                lib.holding_resistance(&spec.victim.cell, &spec.victim.mode, &char_opts)?
            }
            None => holding_resistance(&spec.victim.cell, &spec.victim.mode, &char_opts.newton)?,
        };
        let char_load = spec.victim_total_cap(load_curve.c_out);
        let prop_table = match library {
            Some(lib) => (*lib.propagated_table(
                &spec.victim.cell,
                &spec.victim.mode,
                char_load,
                &char_opts,
            )?)
            .clone(),
            None => {
                let heights: Vec<f64> = [0.25, 0.45, 0.65, 0.85, 1.05]
                    .iter()
                    .map(|f| f * vdd)
                    .collect();
                let widths: Vec<f64> = [150.0, 300.0, 600.0, 1200.0]
                    .iter()
                    .map(|w| w * PS)
                    .collect();
                characterize_propagated_noise_with(
                    &spec.victim.cell,
                    &spec.victim.mode,
                    char_load,
                    &heights,
                    &widths,
                    &char_opts,
                )?
            }
        };
        // Helper: instantiate a bus with every linear load absorbed
        // (receiver input caps, victim driver output + Miller caps).
        let c_dp = if options.include_driver_caps {
            load_curve.c_out + load_curve.c_miller
        } else {
            0.0
        };
        let build_net = |bus: &CoupledBus| -> Result<(Circuit, Vec<sna_interconnect::WireNodes>)> {
            let mut net = Circuit::new();
            let wires = bus.instantiate(&mut net, "net")?;
            net.add_capacitor(
                "Crecv_vic",
                wires[0].far,
                Circuit::gnd(),
                spec.victim.receiver.input_capacitance(),
            )?;
            if c_dp > 0.0 {
                net.add_capacitor("Cdrv_vic", wires[0].near, Circuit::gnd(), c_dp)?;
            }
            for (k, agg) in spec.aggressors.iter().enumerate() {
                if agg.receiver_cap > 0.0 {
                    net.add_capacitor(
                        &format!("Crecv_a{k}"),
                        wires[k + 1].far,
                        Circuit::gnd(),
                        agg.receiver_cap,
                    )?;
                }
            }
            Ok((net, wires))
        };
        let (net, wires) = build_net(&spec.bus)?;
        let driver_ports = |wires: &[sna_interconnect::WireNodes]| -> Vec<_> {
            std::iter::once(wires[0].near)
                .chain((0..spec.aggressors.len()).map(|k| wires[k + 1].near))
                .collect()
        };
        // --- Aggressor Thevenin models, fitted against the Π of each
        // aggressor's real (loaded, shielded) net per Dartu–Pileggi. The Π
        // comes from the driving-point moments with the *driver* ports
        // shorted (drivers are low-impedance); receiver taps stay floating.
        // Couplings to neighbor aggressors switching simultaneously get the
        // standard Miller factor (0 for in-phase — the neighbor bootstraps
        // the cap; 2 for anti-phase) before the Π is extracted.
        const SIMULTANEOUS_WINDOW: f64 = 150.0 * PS;
        let mut thevenins = Vec::with_capacity(spec.aggressors.len());
        for (k, agg) in spec.aggressors.iter().enumerate() {
            let mut bus_k = spec.bus.clone();
            for c in &mut bus_k.couplings {
                let involves_k = c.a == k + 1 || c.b == k + 1;
                if !involves_k {
                    continue;
                }
                let other = if c.a == k + 1 { c.b } else { c.a };
                if other == 0 {
                    continue; // the victim is quiet: full coupling stands
                }
                let neighbor = &spec.aggressors[other - 1];
                if (neighbor.switch_time - agg.switch_time).abs() < SIMULTANEOUS_WINDOW {
                    c.cc_per_m *= if neighbor.rising == agg.rising {
                        0.0
                    } else {
                        2.0
                    };
                }
            }
            let (net_k, wires_k) = build_net(&bus_k)?;
            let ports_k = driver_ports(&wires_k);
            let moments = port_admittance_moments(&net_k, &ports_k, 3)?;
            let p = k + 1; // driver-port index of aggressor k
            let pi =
                PiModel::from_moments(moments[0][(p, p)], moments[1][(p, p)], moments[2][(p, p)])?;
            let load = TheveninLoad::Pi {
                c_near: pi.c_near,
                r: pi.r,
                c_far: pi.c_far,
            };
            // The library caches the *unshifted* fit (keyed by the exact
            // Π bits), so a persistent cache serves repeated runs of the
            // same design; the switch-time shift is a cheap translation.
            let th = {
                let _t = phase_span(Phase::Thevenin);
                match library {
                    Some(lib) => {
                        (*lib.thevenin(&agg.cell, agg.rising, agg.input_slew, &load, &char_opts)?)
                            .clone()
                    }
                    None => characterize_thevenin_with(
                        &agg.cell,
                        agg.rising,
                        agg.input_slew,
                        &load,
                        &char_opts,
                    )?,
                }
            };
            thevenins.push(th.shifted(agg.switch_time));
        }
        // --- Moment-matched reduction with every port retained.
        let mut ports = vec![wires[0].near];
        let mut port_roles = vec![PortRole::VictimDp];
        for k in 0..spec.aggressors.len() {
            ports.push(wires[k + 1].near);
            port_roles.push(PortRole::AggressorDp(k));
        }
        ports.push(wires[0].far);
        port_roles.push(PortRole::VictimReceiver);
        let reduced = {
            let _t = phase_span(Phase::Reduce);
            prima_reduce_with(
                &net,
                &ports,
                options.reduction_order,
                options.expansion_point,
                options.solver,
            )?
        };
        // --- Victim input waveform.
        let q_in = spec.victim.mode.input_levels[spec.victim.mode.noisy_input];
        let q_out = spec.victim.mode.output_level;
        let vin_wave = match &spec.victim.glitch {
            Some(g) => g.waveform(q_in, vdd),
            None => SourceWaveform::Dc(q_in),
        };
        let c_miller_injection = if options.include_driver_caps {
            load_curve.c_miller
        } else {
            0.0
        };
        Ok(ClusterMacromodel {
            spec: spec.clone(),
            reduced,
            port_roles,
            load_curve,
            thevenins,
            r_hold,
            prop_table,
            vin_wave,
            q_in,
            q_out,
            c_miller_injection,
        })
    }

    /// Index of the victim driving-point port.
    pub fn victim_dp_port(&self) -> usize {
        self.port_roles
            .iter()
            .position(|r| *r == PortRole::VictimDp)
            .expect("victim port always present")
    }

    /// Index of the victim receiver port.
    pub fn victim_receiver_port(&self) -> usize {
        self.port_roles
            .iter()
            .position(|r| *r == PortRole::VictimReceiver)
            .expect("receiver port always present")
    }

    /// Index of aggressor `k`'s driving-point port.
    pub fn aggressor_port(&self, k: usize) -> usize {
        self.port_roles
            .iter()
            .position(|r| *r == PortRole::AggressorDp(k))
            .expect("aggressor port exists")
    }

    /// Victim input voltage at time `t`.
    pub fn vin(&self, t: f64) -> f64 {
        self.vin_wave.eval(t)
    }

    /// d(V_in)/dt at time `t` (central finite difference; the waveform is
    /// piecewise linear so any small step is exact away from corners).
    pub fn dvin_dt(&self, t: f64) -> f64 {
        let h = 0.05 * PS;
        (self.vin_wave.eval(t + h) - self.vin_wave.eval(t - h)) / (2.0 * h)
    }

    /// Re-schedule the cluster's events *without* re-characterizing:
    /// aggressor `k`'s switching event moves to `switch_times[k]` and the
    /// input glitch (if any) peaks at `glitch_peak`. Characterization
    /// artifacts (tables, Thevenin fits, reduction) are timing-independent,
    /// so the worst-case alignment search can call this thousands of times
    /// cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `switch_times.len()` differs from the aggressor count.
    pub fn with_timing(&self, switch_times: &[f64], glitch_peak: Option<f64>) -> Self {
        assert_eq!(
            switch_times.len(),
            self.spec.aggressors.len(),
            "one switch time per aggressor"
        );
        let mut out = self.clone();
        for (k, (&t_new, agg)) in switch_times.iter().zip(&self.spec.aggressors).enumerate() {
            out.thevenins[k] = self.thevenins[k].shifted(t_new - agg.switch_time);
            out.spec.aggressors[k].switch_time = t_new;
        }
        if let (Some(t_peak), Some(g)) = (glitch_peak, self.spec.victim.glitch) {
            let new_glitch = InputGlitch { t_peak, ..g };
            out.spec.victim.glitch = Some(new_glitch);
            out.vin_wave = new_glitch.waveform(self.q_in, self.spec.tech.vdd);
        }
        out
    }

    /// A one-line structural description of the Figure-1 topology, used by
    /// examples and asserted in the integration tests.
    pub fn topology_summary(&self) -> String {
        let mut s = format!(
            "cluster[{}]: VCCS(I_DC {}x{}) + Cout {:.2}fF @ DP_Vic; ",
            self.spec.tech.name,
            self.load_curve.table.x_axis().len(),
            self.load_curve.table.y_axis().len(),
            self.load_curve.c_out * 1e15,
        );
        for (k, th) in self.thevenins.iter().enumerate() {
            s.push_str(&format!(
                "agg{k}: Vth({}) + Rth {:.0}ohm; ",
                if th.rising { "rise" } else { "fall" },
                th.rth
            ));
        }
        s.push_str(&format!(
            "reduced interconnect: dim {} / {} ports",
            self.reduced.dim(),
            self.reduced.n_ports()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::table1_spec;
    use sna_spice::units::NS;

    #[test]
    fn spec_validation() {
        let mut spec = table1_spec();
        assert!(spec.validate().is_ok());
        spec.aggressors.clear();
        assert!(spec.validate().is_err());
        let mut spec = table1_spec();
        spec.dt = 0.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn build_produces_figure1_topology() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        // Figure 1: one VCCS at DP_Vic, Thevenin per aggressor, reduced
        // coupled interconnect, receiver caps absorbed.
        assert_eq!(model.port_roles.len(), 3);
        assert_eq!(model.victim_dp_port(), 0);
        assert_eq!(model.aggressor_port(0), 1);
        assert_eq!(model.victim_receiver_port(), 2);
        assert_eq!(model.thevenins.len(), 1);
        assert!(model.thevenins[0].rising);
        assert!(model.r_hold > 100.0);
        assert!(model.load_curve.c_out > 0.0);
        let summary = model.topology_summary();
        assert!(summary.contains("DP_Vic"));
        assert!(summary.contains("agg0"));
    }

    #[test]
    fn glitch_waveform_direction() {
        let g = InputGlitch {
            height: 0.8,
            width: 400.0 * PS,
            t_peak: 1.0 * NS,
        };
        // Quiescent high input: glitch dips downward.
        let w = g.waveform(1.2, 1.2);
        assert!((w.eval(1.0 * NS) - 0.4).abs() < 1e-9);
        assert!((w.eval(0.0) - 1.2).abs() < 1e-12);
        // Quiescent low input: glitch rises.
        let w = g.waveform(0.0, 1.2);
        assert!((w.eval(1.0 * NS) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn vin_derivative_matches_slope() {
        let spec = table1_spec();
        let model = ClusterMacromodel::build(&spec).unwrap();
        // During the falling edge of the triangle the slope is
        // -height / (width/2).
        let g = spec.victim.glitch.unwrap();
        let slope = model.dvin_dt(g.t_peak - 0.1 * g.width);
        let want = -g.height / (0.5 * g.width);
        assert!(
            (slope - want).abs() / want.abs() < 1e-6,
            "slope={slope} want={want}"
        );
    }
}
