//! End-to-end corpus gate: every checked-in deck runs through the whole
//! `sna --deck` pipeline (parse → flatten → K-lane transient → glitch
//! metrics → report) and the JSON report must match its golden byte for
//! byte — at every thread count and on every compute backend.
//!
//! Regenerate goldens after an intentional change with
//!
//! ```text
//! SNAPSHOT_UPDATE=1 cargo test -p sna-flow --test deck_corpus
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use sna_flow::deck::{deck_to_csv, deck_to_json, deck_to_text, run_deck, DeckOptions, DeckReport};
use sna_spice::backend::BackendKind;
use sna_spice::parser::parse_deck_file;

const CORPUS: &[&str] = &[
    "inverter",
    "coupled_bus",
    "subckt_hierarchy",
    "controlled_filter",
];

fn deck_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../spice/tests/decks")
        .join(format!("{name}.cir"))
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/goldens/{name}.json"))
}

fn opts(threads: usize, backend: BackendKind) -> DeckOptions {
    DeckOptions {
        threads,
        backend,
        ..DeckOptions::default()
    }
}

/// Run a corpus deck, labeled with its repo-relative path so goldens are
/// machine-independent and `cmp`-able against CI runs of the `sna` binary
/// from the repository root.
fn run_corpus_deck(name: &str, o: &DeckOptions) -> DeckReport {
    let parsed = parse_deck_file(deck_path(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    let label = format!("crates/spice/tests/decks/{name}.cir");
    run_deck(&parsed, &label, o).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn corpus_matches_goldens_across_threads_and_backends() {
    for name in CORPUS {
        let report = run_corpus_deck(name, &opts(1, BackendKind::Scalar));
        assert!(
            report.skipped.is_empty(),
            "{name}: no corpus case may be skipped: {:?}",
            report.skipped
        );
        assert!(!report.findings.is_empty(), "{name}: no cases ran");
        let json = deck_to_json(&report);
        let golden = golden_path(name);
        if std::env::var_os("SNAPSHOT_UPDATE").is_some() {
            fs::write(&golden, &json).expect("write golden");
        } else {
            let want = fs::read_to_string(&golden).unwrap_or_else(|e| {
                panic!(
                    "missing golden {}: {e}; run with SNAPSHOT_UPDATE=1 to create it",
                    golden.display()
                )
            });
            assert_eq!(
                json, want,
                "{name}: deck report drifted from its golden; if intentional, \
                 regenerate with SNAPSHOT_UPDATE=1 and commit"
            );
        }
        // Determinism contract: threads and backend must not change a byte.
        for (threads, backend) in [
            (4, BackendKind::Scalar),
            (1, BackendKind::Batched),
            (4, BackendKind::Batched),
        ] {
            let r = run_corpus_deck(name, &opts(threads, backend));
            assert_eq!(
                deck_to_json(&r),
                json,
                "{name}: report differs at threads={threads} backend={backend:?}"
            );
        }
    }
}

#[test]
fn corpus_renders_all_formats() {
    for name in CORPUS {
        let report = run_corpus_deck(name, &opts(1, BackendKind::Scalar));
        let text = deck_to_text(&report);
        assert!(text.contains("summary:"), "{name}: text report malformed");
        let csv = deck_to_csv(&report);
        assert!(
            csv.starts_with("case,victim,"),
            "{name}: csv report malformed"
        );
        assert_eq!(
            csv.lines().count(),
            1 + report.findings.len(),
            "{name}: csv row count"
        );
    }
}
