//! `sna serve` — a long-lived incremental analysis session.
//!
//! Batch sign-off re-pays the whole flow on every invocation even when an
//! engineer only nudged one cluster. Serve mode keeps the design, the
//! receiver NRC and the characterization library resident, reads
//! newline-delimited JSON queries on stdin, and re-analyzes **only the
//! clusters whose fingerprints changed** since their memoized result —
//! everything else is answered from the per-cluster result memo.
//!
//! The protocol is one JSON object per line in, one per line out:
//!
//! * `{"cmd":"analyze"}` — analyze every cluster (or a subset via
//!   `"clusters":["net000",...]`); returns findings in design order plus
//!   how many were re-analyzed vs. served from the memo,
//! * `{"cmd":"edit","cluster":"net000",...}` — mutate one cluster
//!   (`glitch_height`/`glitch_width`, per-aggressor `strength` /
//!   `input_slew` / `switch_time` / `rising` / `receiver_cap` via
//!   `"aggressor":<idx>`, or `drop_aggressor`); the next `analyze`
//!   re-runs just that cluster,
//! * `{"cmd":"guard_band","value":0.05}` — change the NRC guard band
//!   (re-fingerprints everything: verdicts depend on it),
//! * `{"cmd":"stats"}` — session counters and cache statistics,
//! * `{"cmd":"shutdown"}` — persist the library cache (if
//!   `--library-cache` was given) and exit.
//!
//! Malformed input gets `{"ok":false,"error":...}` — the session never
//! crashes on a bad query. Re-analysis runs on the same order-preserving
//! pool as batch mode, so serve findings are byte-identical to a fresh
//! batch run of the edited design.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

use sna_cells::Cell;
use sna_core::cluster::{ClusterSpec, MacromodelOptions, SwitchingWindow};
use sna_core::library::{opts_fingerprint, solver_code, tech_fingerprint, Fnv, NoiseModelLibrary};
use sna_core::nrc::NoiseRejectionCurve;
use sna_core::sna::{analyze_cluster, ClusterFinding, Design, SnaOptions};
use sna_obs::Metric;
use sna_spice::error::{Error, Result};
use sna_spice::units::PS;

use crate::cache::{load_library_cache, save_library_cache};
use crate::cli::{CliConfig, LogLevel};
use crate::corners::{corner_by_name, NRC_WIDTHS};
use crate::driver::FlowOptions;
use crate::metrics::esc;
use crate::output::verdict_tag;
use crate::pool::{auto_threads, parallel_map_ordered};

// ---------------------------------------------------------------------------
// Minimal JSON reader (the vendored serde is a no-op marker; queries are
// parsed by hand, mirroring the hand-rolled writers elsewhere in the repo).

/// A parsed JSON value. Numbers are kept as `f64`, which covers every
/// field the protocol defines.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object-field lookup (first match; the protocol never repeats keys).
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> std::result::Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", want as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> std::result::Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> std::result::Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are not paired; the protocol is ASCII.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is validated UTF-8:
                    // it arrived as &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        let v: f64 = s
            .parse()
            .map_err(|_| format!("bad number '{s}' at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number '{s}'"));
        }
        Ok(Json::Num(v))
    }
}

// ---------------------------------------------------------------------------
// Cluster fingerprints.

fn cell_fp(h: &mut Fnv, cell: &Cell) {
    h.write_str(cell.cell_type.tag());
    h.write_f64(cell.strength);
}

fn window_fp(h: &mut Fnv, w: Option<SwitchingWindow>) {
    match w {
        Some(w) => {
            h.write_u8(1);
            h.write_f64(w.t_min);
            h.write_f64(w.t_max);
        }
        None => h.write_u8(0),
    }
}

/// FNV fingerprint of everything a cluster's finding depends on: the full
/// [`ClusterSpec`] plus the analysis options. The compute backend is
/// deliberately excluded — backends are bit-identical by construction, so
/// switching one must not invalidate the memo.
fn cluster_fingerprint(spec: &ClusterSpec, sna: &SnaOptions, mm: &MacromodelOptions) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(tech_fingerprint(&spec.tech));
    cell_fp(&mut h, &spec.victim.cell);
    h.write_usize(spec.victim.mode.noisy_input);
    h.write_usize(spec.victim.mode.input_levels.len());
    for &v in &spec.victim.mode.input_levels {
        h.write_f64(v);
    }
    h.write_f64(spec.victim.mode.output_level);
    match &spec.victim.glitch {
        Some(g) => {
            h.write_u8(1);
            h.write_f64(g.height);
            h.write_f64(g.width);
            h.write_f64(g.t_peak);
        }
        None => h.write_u8(0),
    }
    cell_fp(&mut h, &spec.victim.receiver);
    window_fp(&mut h, spec.victim.sensitivity);
    h.write_usize(spec.aggressors.len());
    for a in &spec.aggressors {
        cell_fp(&mut h, &a.cell);
        h.write_bool(a.rising);
        h.write_f64(a.input_slew);
        h.write_f64(a.switch_time);
        h.write_f64(a.receiver_cap);
        window_fp(&mut h, a.window);
        match a.mexcl_group {
            Some(g) => {
                h.write_u8(1);
                h.write_u64(u64::from(g));
            }
            None => h.write_u8(0),
        }
    }
    h.write_usize(spec.bus.segments);
    h.write_usize(spec.bus.wires.len());
    for w in &spec.bus.wires {
        h.write_f64(w.length);
        h.write_f64(w.r_per_m);
        h.write_f64(w.cg_per_m);
    }
    h.write_usize(spec.bus.couplings.len());
    for c in &spec.bus.couplings {
        h.write_usize(c.a);
        h.write_usize(c.b);
        h.write_f64(c.cc_per_m);
        h.write_f64(c.overlap);
    }
    h.write_u64(opts_fingerprint(&spec.char_opts));
    h.write_f64(spec.t_stop);
    h.write_f64(spec.dt);
    h.write_bool(sna.align_worst_case);
    h.write_f64(sna.align_window);
    h.write_f64(sna.margin_band);
    h.write_bool(sna.strict);
    h.write_usize(sna.frame_grid);
    h.write_bool(sna.frame_exhaustive);
    h.write_bool(mm.include_driver_caps);
    h.write_usize(mm.reduction_order);
    h.write_f64(mm.expansion_point);
    let (tag, arg) = solver_code(mm.solver);
    h.write_u8(tag);
    h.write_u64(arg);
    h.finish()
}

// ---------------------------------------------------------------------------
// Session state.

/// One resident serve session: design + NRC + library + result memo.
///
/// All protocol handling goes through [`ServeState::handle_line`], which
/// is pure string-to-string — the stdin/stdout loop in [`run_serve`] is a
/// trivial shell around it, so the whole protocol is unit-testable.
pub struct ServeState {
    design: Design,
    nrc: Arc<NoiseRejectionCurve>,
    library: NoiseModelLibrary,
    opts: FlowOptions,
    /// Per-cluster memo: name → (fingerprint it was computed at, finding).
    memo: HashMap<String, (u64, ClusterFinding)>,
    queries: u64,
    reanalyzed: u64,
    memo_hits: u64,
    done: bool,
}

fn err_json(msg: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", esc(msg))
}

/// Parse a FRAME window edit value: `[t_min, t_max]` sets, `null` clears.
/// Errors are returned pre-rendered as protocol responses.
fn parse_window_field(
    j: &Json,
    field: &str,
) -> std::result::Result<Option<SwitchingWindow>, String> {
    match j {
        Json::Null => Ok(None),
        Json::Arr(v) if v.len() == 2 => {
            let (Some(lo), Some(hi)) = (v[0].as_f64(), v[1].as_f64()) else {
                return Err(err_json(&format!(
                    "'{field}' endpoints must be numbers (seconds)"
                )));
            };
            let w = SwitchingWindow::new(lo, hi);
            if !w.is_valid() {
                return Err(err_json(&format!(
                    "'{field}' must be finite with t_min <= t_max"
                )));
            }
            Ok(Some(w))
        }
        _ => Err(err_json(&format!(
            "'{field}' must be [t_min, t_max] or null"
        ))),
    }
}

impl ServeState {
    /// Build a session from the CLI configuration: first corner only (a
    /// serve session holds one design), library warmed from
    /// `--library-cache` if given.
    ///
    /// # Errors
    ///
    /// Fails on unknown corners or NRC characterization failure.
    pub fn new(cfg: &CliConfig) -> Result<ServeState> {
        let name = cfg.corners.first().map(String::as_str).unwrap_or("cmos130");
        let tech = corner_by_name(name)?;
        let library = NoiseModelLibrary::new();
        if let Some(path) = &cfg.library_cache {
            let load = load_library_cache(Path::new(path), &library);
            if cfg.log_level >= LogLevel::Normal {
                eprintln!("{}", load.message);
            }
        }
        let opts = FlowOptions {
            sna: SnaOptions {
                align_worst_case: cfg.worst_case,
                align_window: 400.0 * PS,
                margin_band: cfg.guard_band,
                strict: false,
                frame_grid: cfg.frame_grid,
                frame_exhaustive: cfg.frame_exhaustive,
            },
            mm: MacromodelOptions {
                solver: cfg.solver,
                backend: cfg.backend,
                ..Default::default()
            },
            threads: cfg.threads,
        };
        let mut design = Design::random(&tech, cfg.clusters, cfg.seed);
        if let Some(path) = &cfg.windows {
            let edits = crate::windows::load_windows(Path::new(path))?;
            crate::windows::apply_windows(&mut design, &edits)?;
        }
        let nrc = library.nrc(&Cell::inv(tech, 1.0), true, &NRC_WIDTHS, opts.mm.solver)?;
        Ok(ServeState {
            design,
            nrc,
            library,
            opts,
            memo: HashMap::new(),
            queries: 0,
            reanalyzed: 0,
            memo_hits: 0,
            done: false,
        })
    }

    /// Whether a `shutdown` command has been handled.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Session counters: (queries, clusters re-analyzed, memo hits).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.queries, self.reanalyzed, self.memo_hits)
    }

    /// Borrow the session library (to persist it on shutdown).
    pub fn library(&self) -> &NoiseModelLibrary {
        &self.library
    }

    /// Handle one protocol line, returning one response line (no trailing
    /// newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.queries += 1;
        sna_obs::count(Metric::ServeQueries, 1);
        let query = match JsonParser::parse(line) {
            Ok(q) => q,
            Err(e) => return err_json(&format!("bad JSON: {e}")),
        };
        let cmd = match query.get("cmd").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => return err_json("missing string field 'cmd'"),
        };
        match cmd.as_str() {
            "analyze" => self.cmd_analyze(&query),
            "edit" => self.cmd_edit(&query),
            "guard_band" => self.cmd_guard_band(&query),
            "stats" => self.cmd_stats(),
            "shutdown" => {
                self.done = true;
                "{\"ok\": true, \"shutdown\": true}".into()
            }
            other => err_json(&format!(
                "unknown cmd '{other}' (expected analyze, edit, guard_band, stats, shutdown)"
            )),
        }
    }

    fn cluster_index(&self, name: &str) -> Option<usize> {
        self.design.clusters.iter().position(|c| c.name == name)
    }

    fn cmd_analyze(&mut self, query: &Json) -> String {
        // Resolve the target set (design order, deduplicated by index).
        let mut targets: Vec<usize> = match query.get("clusters") {
            None => (0..self.design.clusters.len()).collect(),
            Some(Json::Arr(names)) => {
                let mut idx = Vec::with_capacity(names.len());
                for n in names {
                    let Some(name) = n.as_str() else {
                        return err_json("'clusters' must be an array of cluster names");
                    };
                    match self.cluster_index(name) {
                        Some(i) => idx.push(i),
                        None => return err_json(&format!("unknown cluster '{name}'")),
                    }
                }
                idx
            }
            Some(_) => return err_json("'clusters' must be an array of cluster names"),
        };
        targets.sort_unstable();
        targets.dedup();

        // Split into memo hits and fingerprint-changed (or cold) clusters.
        let mut stale: Vec<usize> = Vec::new();
        let mut memo_hits = 0u64;
        for &i in &targets {
            let cl = &self.design.clusters[i];
            let fp = cluster_fingerprint(&cl.spec, &self.opts.sna, &self.opts.mm);
            match self.memo.get(&cl.name) {
                Some((have, _)) if *have == fp => memo_hits += 1,
                _ => stale.push(i),
            }
        }

        // Re-analyze only the stale ones, on the order-preserving pool.
        let threads = if self.opts.threads == 0 {
            auto_threads()
        } else {
            self.opts.threads
        }
        .clamp(1, stale.len().max(1));
        let jobs: Vec<usize> = stale.clone();
        let design = &self.design;
        let nrc = &self.nrc;
        let opts = &self.opts;
        let library = &self.library;
        let outcomes = parallel_map_ordered(threads, &jobs, |_, &i| {
            let cl = &design.clusters[i];
            analyze_cluster(cl, nrc, &opts.sna, &opts.mm, library)
        });
        for (&i, outcome) in jobs.iter().zip(outcomes) {
            let cl = &self.design.clusters[i];
            match outcome {
                Ok(finding) => {
                    let fp = cluster_fingerprint(&cl.spec, &self.opts.sna, &self.opts.mm);
                    self.memo.insert(cl.name.clone(), (fp, finding));
                }
                Err(e) => {
                    return err_json(&format!("cluster '{}' failed: {e}", cl.name));
                }
            }
        }
        self.reanalyzed += stale.len() as u64;
        self.memo_hits += memo_hits;
        sna_obs::count(Metric::ServeReanalyzed, stale.len() as u64);
        sna_obs::count(Metric::ServeMemoHits, memo_hits);

        // Render findings in design order.
        let rows: Vec<String> = targets
            .iter()
            .map(|&i| {
                let name = &self.design.clusters[i].name;
                let (_, f) = &self.memo[name];
                // Constrained (FRAME) margin rides along only for clusters
                // that carry constraints.
                let constrained = match &f.constrained {
                    Some(c) => format!(", \"constrained_margin\": {:.6}", c.margin),
                    None => String::new(),
                };
                format!(
                    "{{\"net\": \"{}\", \"verdict\": \"{}\", \"margin\": {:.6}, \"peak\": {:.6}, \"width\": {:.6e}{}}}",
                    esc(name),
                    verdict_tag(f.verdict),
                    f.margin,
                    f.receiver_metrics.peak,
                    f.receiver_metrics.width,
                    constrained
                )
            })
            .collect();
        format!(
            "{{\"ok\": true, \"analyzed\": {}, \"memo_hits\": {}, \"findings\": [{}]}}",
            stale.len(),
            memo_hits,
            rows.join(", ")
        )
    }

    fn cmd_edit(&mut self, query: &Json) -> String {
        let Some(name) = query.get("cluster").and_then(Json::as_str) else {
            return err_json("edit needs a string field 'cluster'");
        };
        let Some(i) = self.cluster_index(name) else {
            return err_json(&format!("unknown cluster '{name}'"));
        };
        // Apply on a clone, commit only if every field validates — a bad
        // edit must leave the design untouched.
        let mut spec = self.design.clusters[i].spec.clone();
        let mut edited = 0usize;

        for field in ["glitch_height", "glitch_width"] {
            let Some(j) = query.get(field) else { continue };
            let Some(v) = j.as_f64() else {
                return err_json(&format!("'{field}' must be a number"));
            };
            if !(v.is_finite() && v > 0.0) {
                return err_json(&format!("'{field}' must be positive and finite"));
            }
            let Some(g) = &mut spec.victim.glitch else {
                return err_json(&format!(
                    "cluster '{name}' has no propagated glitch to edit"
                ));
            };
            if field == "glitch_height" {
                g.height = v;
            } else {
                g.width = v;
            }
            edited += 1;
        }

        // Victim sensitivity window (FRAME): [t_min, t_max] or null.
        if let Some(j) = query.get("sensitivity") {
            match parse_window_field(j, "sensitivity") {
                Ok(w) => spec.victim.sensitivity = w,
                Err(e) => return e,
            }
            edited += 1;
        }

        // Per-aggressor edits.
        let agg_fields = [
            "strength",
            "input_slew",
            "switch_time",
            "rising",
            "receiver_cap",
            "window",
            "mexcl",
        ];
        if let Some(j) = query.get("aggressor") {
            let Some(k) = j.as_usize() else {
                return err_json("'aggressor' must be a non-negative integer index");
            };
            if k >= spec.aggressors.len() {
                return err_json(&format!(
                    "aggressor index {k} out of range (cluster '{name}' has {})",
                    spec.aggressors.len()
                ));
            }
            for field in agg_fields {
                let Some(j) = query.get(field) else { continue };
                match field {
                    "rising" => {
                        let Some(b) = j.as_bool() else {
                            return err_json("'rising' must be a boolean");
                        };
                        spec.aggressors[k].rising = b;
                    }
                    "window" => match parse_window_field(j, "window") {
                        Ok(w) => spec.aggressors[k].window = w,
                        Err(e) => return e,
                    },
                    "mexcl" => match j {
                        Json::Null => spec.aggressors[k].mexcl_group = None,
                        _ => match j.as_usize().and_then(|g| u32::try_from(g).ok()) {
                            Some(g) => spec.aggressors[k].mexcl_group = Some(g),
                            None => return err_json("'mexcl' must be a group id or null"),
                        },
                    },
                    _ => {
                        let Some(v) = j.as_f64() else {
                            return err_json(&format!("'{field}' must be a number"));
                        };
                        if !(v.is_finite() && v > 0.0) {
                            return err_json(&format!("'{field}' must be positive and finite"));
                        }
                        match field {
                            "strength" => {
                                let tech = spec.aggressors[k].cell.tech.clone();
                                spec.aggressors[k].cell = Cell::inv(tech, v);
                            }
                            "input_slew" => spec.aggressors[k].input_slew = v,
                            "switch_time" => spec.aggressors[k].switch_time = v,
                            "receiver_cap" => spec.aggressors[k].receiver_cap = v,
                            _ => unreachable!(),
                        }
                    }
                }
                edited += 1;
            }
        } else if agg_fields.iter().any(|f| query.get(f).is_some()) {
            return err_json("aggressor fields need an 'aggressor' index");
        }

        if let Some(j) = query.get("drop_aggressor") {
            let Some(k) = j.as_usize() else {
                return err_json("'drop_aggressor' must be a non-negative integer index");
            };
            if k >= spec.aggressors.len() {
                return err_json(&format!(
                    "aggressor index {k} out of range (cluster '{name}' has {})",
                    spec.aggressors.len()
                ));
            }
            if spec.aggressors.len() == 1 {
                return err_json("cannot drop the last aggressor of a cluster");
            }
            // Wire 0 is the victim; aggressor k drives wire k+1. Dropping
            // it removes that wire, its couplings, and shifts the higher
            // wire indices down by one.
            spec.aggressors.remove(k);
            let wire = k + 1;
            spec.bus.wires.remove(wire);
            spec.bus.couplings.retain(|c| c.a != wire && c.b != wire);
            for c in &mut spec.bus.couplings {
                if c.a > wire {
                    c.a -= 1;
                }
                if c.b > wire {
                    c.b -= 1;
                }
            }
            edited += 1;
        }

        if edited == 0 {
            return err_json("edit changed nothing (no recognized field present)");
        }
        self.design.clusters[i].spec = spec;
        format!(
            "{{\"ok\": true, \"cluster\": \"{}\", \"edited_fields\": {edited}}}",
            esc(name)
        )
    }

    fn cmd_guard_band(&mut self, query: &Json) -> String {
        let Some(v) = query.get("value").and_then(Json::as_f64) else {
            return err_json("guard_band needs a numeric field 'value'");
        };
        if !v.is_finite() || v < 0.0 {
            return err_json("guard band must be a non-negative voltage");
        }
        self.opts.sna.margin_band = v;
        format!("{{\"ok\": true, \"guard_band\": {v}}}")
    }

    fn cmd_stats(&self) -> String {
        let st = self.library.stats();
        format!(
            "{{\"ok\": true, \"clusters\": {}, \"queries\": {}, \"reanalyzed\": {}, \"memo_hits\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"disk_hits\": {}, \"disk_misses\": {}, \"stale_rejected\": {}}}}}",
            self.design.clusters.len(),
            self.queries,
            self.reanalyzed,
            self.memo_hits,
            st.hits,
            st.misses,
            st.disk_hits,
            st.disk_misses,
            st.stale_rejected
        )
    }
}

/// The `sna serve` entry point: read queries from stdin, answer on stdout,
/// persist the library cache on shutdown.
///
/// # Errors
///
/// Fails on session construction (unknown corner, NRC characterization)
/// and on stdout write failures; per-query problems are answered in-band
/// and never end the session.
pub fn run_serve(cfg: &CliConfig) -> Result<()> {
    let mut state = ServeState::new(cfg)?;
    if cfg.log_level >= LogLevel::Normal {
        eprintln!(
            "serve: {} clusters resident on corner {}, awaiting queries",
            cfg.clusters,
            cfg.corners.first().map(String::as_str).unwrap_or("cmos130")
        );
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| Error::InvalidAnalysis(format!("stdin read failed: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = state.handle_line(&line);
        writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .map_err(|e| Error::InvalidAnalysis(format!("stdout write failed: {e}")))?;
        if state.done() {
            break;
        }
    }
    if let Some(path) = &cfg.library_cache {
        match save_library_cache(Path::new(path), state.library()) {
            Ok(bytes) => {
                if cfg.log_level >= LogLevel::Normal {
                    eprintln!("library cache '{path}': wrote {bytes} bytes");
                }
            }
            Err(e) => eprintln!("warning: {e}"),
        }
    }
    let (q, r, m) = state.counters();
    if cfg.log_level >= LogLevel::Normal {
        eprintln!("serve: {q} queries, {r} clusters re-analyzed, {m} memo hits");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(clusters: usize) -> ServeState {
        let cfg = CliConfig {
            clusters,
            threads: 1,
            log_level: LogLevel::Quiet,
            ..Default::default()
        };
        ServeState::new(&cfg).expect("serve session")
    }

    #[test]
    fn json_parser_handles_the_protocol_surface() {
        let v = JsonParser::parse(
            r#"{"cmd": "edit", "cluster": "net000", "aggressor": 1, "rising": false,
                "input_slew": 5.5e-11, "tags": ["a", "b"], "note": "x\n\"y\"", "none": null}"#,
        )
        .expect("parse");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("edit"));
        assert_eq!(v.get("aggressor").and_then(Json::as_usize), Some(1));
        assert_eq!(v.get("rising").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("input_slew").and_then(Json::as_f64), Some(5.5e-11));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert!(matches!(v.get("tags"), Some(Json::Arr(a)) if a.len() == 2));
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "{\"a\": 1e999}",
            "nul",
        ] {
            assert!(JsonParser::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn analyze_then_memo_hit_then_edit_reanalyzes_one() {
        let mut s = session(3);
        // Cold analyze: everything is computed.
        let r1 = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r1.contains("\"ok\": true"), "{r1}");
        assert!(r1.contains("\"analyzed\": 3"), "{r1}");
        assert!(r1.contains("\"memo_hits\": 0"), "{r1}");
        assert!(r1.contains("\"net\": \"net000\""), "{r1}");
        // Identical re-query: all memo hits, zero re-analysis.
        let r2 = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r2.contains("\"analyzed\": 0"), "{r2}");
        assert!(r2.contains("\"memo_hits\": 3"), "{r2}");
        // Findings are identical between the two.
        let findings = |r: &str| r[r.find("\"findings\"").unwrap()..].to_string();
        assert_eq!(findings(&r1), findings(&r2));
        // Edit one cluster; only it is re-analyzed.
        let r3 = s.handle_line(
            r#"{"cmd": "edit", "cluster": "net001", "aggressor": 0, "input_slew": 1.1e-10}"#,
        );
        assert!(r3.contains("\"ok\": true"), "{r3}");
        let r4 = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r4.contains("\"analyzed\": 1"), "{r4}");
        assert!(r4.contains("\"memo_hits\": 2"), "{r4}");
        let (q, re, mh) = s.counters();
        assert_eq!(q, 4);
        assert_eq!(re, 4); // 3 cold + 1 after the edit
        assert_eq!(mh, 5); // 3 + 2
    }

    #[test]
    fn serve_findings_match_batch_flow() {
        let mut s = session(3);
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        // The same design analyzed by the batch driver gives the same
        // margins — serve is the incremental view of the same flow.
        let cfg = CliConfig {
            clusters: 3,
            threads: 1,
            log_level: LogLevel::Quiet,
            ..Default::default()
        };
        let tech = corner_by_name("cmos130").unwrap();
        let design = Design::random(&tech, cfg.clusters, cfg.seed);
        let lib = NoiseModelLibrary::new();
        let nrc = lib
            .nrc(&Cell::inv(tech, 1.0), true, &NRC_WIDTHS, Default::default())
            .unwrap();
        for cl in &design.clusters {
            let f = analyze_cluster(
                cl,
                &nrc,
                &SnaOptions::default(),
                &MacromodelOptions::default(),
                &lib,
            )
            .unwrap();
            let expect = format!(
                "\"net\": \"{}\", \"verdict\": \"{}\", \"margin\": {:.6}",
                cl.name,
                verdict_tag(f.verdict),
                f.margin
            );
            assert!(r.contains(&expect), "missing {expect} in {r}");
        }
    }

    #[test]
    fn subset_analyze_and_unknown_cluster() {
        let mut s = session(3);
        let r = s.handle_line(r#"{"cmd": "analyze", "clusters": ["net002", "net000"]}"#);
        assert!(r.contains("\"analyzed\": 2"), "{r}");
        // Design order regardless of request order.
        let p0 = r.find("net000").unwrap();
        let p2 = r.find("net002").unwrap();
        assert!(p0 < p2, "{r}");
        let r = s.handle_line(r#"{"cmd": "analyze", "clusters": ["netXYZ"]}"#);
        assert!(r.contains("unknown cluster"), "{r}");
    }

    #[test]
    fn guard_band_edit_refingerprints_everything() {
        let mut s = session(2);
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r.contains("\"analyzed\": 2"), "{r}");
        let r = s.handle_line(r#"{"cmd": "guard_band", "value": 0.25}"#);
        assert!(r.contains("\"ok\": true"), "{r}");
        // Verdicts depend on the guard band, so nothing can be served
        // from the old memo.
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r.contains("\"analyzed\": 2"), "{r}");
        assert!(r.contains("\"memo_hits\": 0"), "{r}");
    }

    #[test]
    fn frame_edits_invalidate_only_the_target_cluster() {
        let mut s = session(2);
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r.contains("\"analyzed\": 2"), "{r}");
        assert!(!r.contains("constrained_margin"), "{r}");
        // Constrain net000: wide window (always feasible) + a mexcl group.
        let r = s.handle_line(
            r#"{"cmd": "edit", "cluster": "net000", "aggressor": 0, "window": [0, 1e-8], "mexcl": 3}"#,
        );
        assert!(r.contains("\"edited_fields\": 2"), "{r}");
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r.contains("\"analyzed\": 1"), "{r}");
        assert!(r.contains("\"memo_hits\": 1"), "{r}");
        assert!(r.contains("constrained_margin"), "{r}");
        // Victim sensitivity is a per-cluster field, no aggressor index.
        let r = s.handle_line(r#"{"cmd": "edit", "cluster": "net000", "sensitivity": [0, 5e-9]}"#);
        assert!(r.contains("\"edited_fields\": 1"), "{r}");
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r.contains("\"analyzed\": 1"), "{r}");
        // Clearing the constraints restores the unconstrained report.
        let r = s.handle_line(
            r#"{"cmd": "edit", "cluster": "net000", "aggressor": 0, "window": null, "mexcl": null, "sensitivity": null}"#,
        );
        assert!(r.contains("\"edited_fields\": 3"), "{r}");
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(!r.contains("constrained_margin"), "{r}");
        // Malformed values are rejected without mutating the design.
        let r = s.handle_line(
            r#"{"cmd": "edit", "cluster": "net000", "aggressor": 0, "window": [2e-9, 1e-9]}"#,
        );
        assert!(r.contains("t_min <= t_max"), "{r}");
        let r = s.handle_line(r#"{"cmd": "analyze"}"#);
        assert!(r.contains("\"memo_hits\": 2"), "{r}");
    }

    #[test]
    fn drop_aggressor_keeps_bus_consistent() {
        let mut s = session(6);
        // Find a cluster with more than one aggressor.
        let i = s
            .design
            .clusters
            .iter()
            .position(|c| c.spec.aggressors.len() >= 2)
            .expect("a multi-aggressor cluster in 6 draws");
        let name = s.design.clusters[i].name.clone();
        let n_agg = s.design.clusters[i].spec.aggressors.len();
        let r = s.handle_line(&format!(
            r#"{{"cmd": "edit", "cluster": "{name}", "drop_aggressor": 0}}"#
        ));
        assert!(r.contains("\"ok\": true"), "{r}");
        let spec = &s.design.clusters[i].spec;
        assert_eq!(spec.aggressors.len(), n_agg - 1);
        assert_eq!(spec.bus.wires.len(), n_agg); // victim + remaining
        for c in &spec.bus.couplings {
            assert!(c.a < spec.bus.wires.len() && c.b < spec.bus.wires.len());
        }
        // The edited cluster still analyzes cleanly.
        let r = s.handle_line(&format!(r#"{{"cmd": "analyze", "clusters": ["{name}"]}}"#));
        assert!(r.contains("\"ok\": true"), "{r}");
        assert!(r.contains("\"analyzed\": 1"), "{r}");
    }

    #[test]
    fn malformed_queries_answer_in_band() {
        let mut s = session(1);
        for (bad, needle) in [
            ("not json at all", "bad JSON"),
            ("{}", "missing string field 'cmd'"),
            (r#"{"cmd": "dance"}"#, "unknown cmd"),
            (r#"{"cmd": "edit"}"#, "needs a string field 'cluster'"),
            (r#"{"cmd": "edit", "cluster": "net000"}"#, "changed nothing"),
            (
                r#"{"cmd": "edit", "cluster": "net000", "input_slew": 1e-10}"#,
                "need an 'aggressor' index",
            ),
            (
                r#"{"cmd": "edit", "cluster": "net000", "aggressor": 99, "input_slew": 1e-10}"#,
                "out of range",
            ),
            (r#"{"cmd": "guard_band"}"#, "numeric field 'value'"),
            (r#"{"cmd": "guard_band", "value": -1}"#, "non-negative"),
        ] {
            let r = s.handle_line(bad);
            assert!(r.contains("\"ok\": false"), "{bad} -> {r}");
            assert!(r.contains(needle), "{bad} -> {r}");
        }
        // A failed edit leaves the design untouched and the session alive.
        let r = s.handle_line(r#"{"cmd": "stats"}"#);
        assert!(r.contains("\"ok\": true"), "{r}");
        let r = s.handle_line(r#"{"cmd": "shutdown"}"#);
        assert!(r.contains("\"shutdown\": true"), "{r}");
        assert!(s.done());
    }
}
