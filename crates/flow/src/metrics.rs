//! The `sna-metrics-v1` document: the run's execution counters as JSON.
//!
//! Everything here is **out-of-band** diagnostics: the noise report is a
//! pure function of the design and options, and stays byte-identical
//! whether or not metrics are collected. This serializer therefore never
//! touches [`crate::output`]'s report document — it renders a separate
//! file from an [`sna_obs::Snapshot`] plus the per-corner cache and pool
//! statistics carried on [`crate::driver::FlowReport`].
//!
//! Sections:
//!
//! * `solver` / `dc` / `tran` / `sweep` — the `sna-obs` counters of the
//!   four instrumented simulator layers,
//! * `serve` — `sna serve` session counters (queries handled, clusters
//!   re-analyzed, memoized results reused),
//! * `cache` — per-artifact-kind hit/miss breakdown of the shared
//!   characterization cache (including `disk_hits`/`disk_misses`/
//!   `stale_rejected` provenance from a `--library-cache` file),
//!   aggregated across corners, plus per-shard occupancy,
//! * `pool` — per-corner worker-pool execution metrics (busy time, job
//!   counts, chunk counts, per-cluster wall times),
//! * `phases` — the hierarchical phase-tree timings (parent → child edges
//!   with call counts and total nanoseconds).

use sna_core::library::{LibraryStats, ALL_ARTIFACT_KINDS, SHARD_COUNT};
use sna_obs::{Metric, Snapshot};

use crate::corners::CornerReport;

/// JSON string escaping per RFC 8259 (quotes, backslashes, control chars).
/// Shared with the `serve` responder, which emits the same dialect.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON value: `null` for the non-finite values JSON lacks.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn ms(nanos: u64) -> String {
    num(nanos as f64 / 1e6)
}

/// One counter section: `"name": {"key": value, ...}`.
fn section(out: &mut String, snap: &Snapshot, name: &str, metrics: &[Metric], last: bool) {
    out.push_str(&format!("  \"{name}\": {{"));
    let rows: Vec<String> = metrics
        .iter()
        .map(|&m| format!("\"{}\": {}", m.name(), snap.counters.get(m)))
        .collect();
    out.push_str(&rows.join(", "));
    out.push_str(if last { "}\n" } else { "},\n" });
}

fn cache_section(out: &mut String, corners: &[CornerReport]) {
    // Aggregate across corners: each corner's `cache` is the counter delta
    // it added to the (shared, possibly disk-warmed) library, so counts
    // sum exactly. Shard occupancy is an absolute end-of-corner snapshot;
    // the last corner's is the library's final state.
    let mut total = LibraryStats::default();
    for c in corners {
        let st = &c.flow.cache;
        total.hits += st.hits;
        total.misses += st.misses;
        total.disk_hits += st.disk_hits;
        total.disk_misses += st.disk_misses;
        total.stale_rejected += st.stale_rejected;
        for (acc, k) in total.by_kind.iter_mut().zip(st.by_kind.iter()) {
            acc.hits += k.hits;
            acc.misses += k.misses;
            acc.disk_hits += k.disk_hits;
            acc.disk_misses += k.disk_misses;
            acc.stale_rejected += k.stale_rejected;
        }
        total.shard_occupancy = st.shard_occupancy;
    }
    out.push_str("  \"cache\": {\n");
    out.push_str(&format!(
        "    \"hits\": {}, \"misses\": {}, \"disk_hits\": {}, \"disk_misses\": {}, \"stale_rejected\": {},\n",
        total.hits, total.misses, total.disk_hits, total.disk_misses, total.stale_rejected
    ));
    out.push_str("    \"by_kind\": {");
    let rows: Vec<String> = ALL_ARTIFACT_KINDS
        .iter()
        .map(|&k| {
            let ks = total.kind(k);
            format!(
                "\"{}\": {{\"hits\": {}, \"misses\": {}, \"disk_hits\": {}, \"disk_misses\": {}, \"stale_rejected\": {}}}",
                k.name(),
                ks.hits,
                ks.misses,
                ks.disk_hits,
                ks.disk_misses,
                ks.stale_rejected
            )
        })
        .collect();
    out.push_str(&rows.join(", "));
    out.push_str("},\n");
    let occ: Vec<String> = (0..SHARD_COUNT)
        .map(|i| total.shard_occupancy[i].to_string())
        .collect();
    out.push_str(&format!("    \"shard_occupancy\": [{}]\n", occ.join(", ")));
    out.push_str("  },\n");
}

fn pool_section(out: &mut String, corners: &[CornerReport]) {
    out.push_str("  \"pool\": [\n");
    let rows: Vec<String> = corners
        .iter()
        .map(|c| {
            let p = &c.flow.pool;
            let mut s = String::new();
            s.push_str("    {\n");
            s.push_str(&format!("      \"tech\": \"{}\",\n", esc(&c.tech)));
            s.push_str(&format!(
                "      \"workers\": {}, \"wall_ms\": {},\n",
                c.flow.threads,
                ms(p.wall_nanos)
            ));
            let joined = |v: &[u64]| v.iter().map(|&ns| ms(ns)).collect::<Vec<_>>().join(", ");
            s.push_str(&format!(
                "      \"worker_busy_ms\": [{}],\n",
                joined(&p.worker_busy_nanos)
            ));
            s.push_str(&format!(
                "      \"worker_jobs\": [{}],\n",
                p.worker_jobs
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            s.push_str(&format!(
                "      \"worker_chunks\": [{}],\n",
                p.worker_chunks
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            let clusters: Vec<String> = c
                .flow
                .cluster_wall_nanos
                .iter()
                .map(|(name, ns)| format!("{{\"name\": \"{}\", \"ms\": {}}}", esc(name), ms(*ns)))
                .collect();
            s.push_str(&format!("      \"clusters\": [{}]\n", clusters.join(", ")));
            s.push_str("    }");
            s
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
}

fn phases_section(out: &mut String, snap: &Snapshot) {
    out.push_str("  \"phases\": [\n");
    let rows: Vec<String> = snap
        .phases
        .iter()
        .map(|e| {
            let parent = match e.parent {
                Some(p) => format!("\"{}\"", p.name()),
                None => "null".into(),
            };
            format!(
                "    {{\"phase\": \"{}\", \"parent\": {}, \"calls\": {}, \"ms\": {}}}",
                e.phase.name(),
                parent,
                e.calls,
                ms(e.nanos)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n");
}

/// Render the full `sna-metrics-v1` document.
///
/// `snap` is the aggregated observability snapshot (usually
/// [`sna_obs::snapshot()`] taken after the run), `corners` the per-corner
/// flow reports, and `elapsed_s` the wall time of the whole run.
pub fn metrics_to_json(snap: &Snapshot, corners: &[CornerReport], elapsed_s: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sna-metrics-v1\",\n");
    out.push_str(&format!("  \"threads\": {},\n", snap.threads));
    out.push_str(&format!("  \"elapsed_s\": {},\n", num(elapsed_s)));
    section(
        &mut out,
        snap,
        "solver",
        &[
            Metric::SolverDenseSelected,
            Metric::SolverSparseSelected,
            Metric::SolverFactorsDense,
            Metric::SolverRefactorsDense,
            Metric::SolverFactorsSparse,
            Metric::SolverRefactorsSparse,
            Metric::SolverColdFallbacks,
            Metric::SolverSolves,
        ],
        false,
    );
    section(
        &mut out,
        snap,
        "dc",
        &[
            Metric::DcSolves,
            Metric::DcNewtonIterations,
            Metric::DcGminFallbacks,
            Metric::DcSourceStepFallbacks,
        ],
        false,
    );
    section(
        &mut out,
        snap,
        "tran",
        &[
            Metric::TranCalls,
            Metric::TranSteps,
            Metric::TranNewtonIterations,
            Metric::TranAcceptedSteps,
            Metric::TranRejectedSteps,
        ],
        false,
    );
    section(
        &mut out,
        snap,
        "sweep",
        &[
            Metric::SweepCalls,
            Metric::SweepLanes,
            Metric::SweepLaneNewtonIterations,
            Metric::SweepSerialFallbacks,
            Metric::SweepSteps,
        ],
        false,
    );
    section(
        &mut out,
        snap,
        "serve",
        &[
            Metric::ServeQueries,
            Metric::ServeReanalyzed,
            Metric::ServeMemoHits,
        ],
        false,
    );
    section(
        &mut out,
        snap,
        "frame",
        &[
            Metric::FrameClusters,
            Metric::FrameCandidatesConsidered,
            Metric::FramePrunedWindow,
            Metric::FramePrunedMexcl,
            Metric::FrameSimulated,
        ],
        false,
    );
    cache_section(&mut out, corners);
    pool_section(&mut out, corners);
    phases_section(&mut out, snap);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{FlowOptions, FlowReport};
    use crate::pool::PoolMetrics;
    use sna_core::sna::NoiseReport;

    fn sample_corner() -> CornerReport {
        CornerReport {
            tech: "cmos130".into(),
            flow: FlowReport {
                report: NoiseReport::default(),
                cache: LibraryStats::default(),
                threads: 2,
                pool: PoolMetrics {
                    worker_busy_nanos: vec![1_500_000, 2_500_000],
                    worker_jobs: vec![3, 5],
                    worker_chunks: vec![2, 2],
                    job_nanos: vec![500_000; 8],
                    wall_nanos: 4_000_000,
                },
                cluster_wall_nanos: vec![("net000".into(), 500_000)],
            },
        }
    }

    #[test]
    fn document_has_every_section_and_balanced_braces() {
        let snap = sna_obs::snapshot();
        let corners = [sample_corner()];
        let j = metrics_to_json(&snap, &corners, 1.25);
        for key in [
            "\"schema\": \"sna-metrics-v1\"",
            "\"threads\":",
            "\"elapsed_s\": 1.25",
            "\"solver\":",
            "\"dc\":",
            "\"tran\":",
            "\"sweep\":",
            "\"serve\":",
            "\"queries\":",
            "\"frame\":",
            "\"pruned_window\":",
            "\"pruned_mexcl\":",
            "\"simulated\":",
            "\"cache\":",
            "\"disk_hits\":",
            "\"disk_misses\":",
            "\"stale_rejected\":",
            "\"by_kind\":",
            "\"load_curve\":",
            "\"thevenin\":",
            "\"nrc\":",
            "\"shard_occupancy\":",
            "\"pool\":",
            "\"worker_busy_ms\": [1.5, 2.5]",
            "\"clusters\": [{\"name\": \"net000\", \"ms\": 0.5}]",
            "\"phases\":",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Determinism guard: the report serializers never see any of this.
        let _ = FlowOptions::default();
    }
}
