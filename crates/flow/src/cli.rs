//! Argument parsing and top-level execution for the `sna` binary.
//!
//! Hand-rolled (no `clap` in the vendored set): a flat flag grammar,
//! `--flag value` only, with `--help` text kept next to the parser so the
//! two cannot drift apart. Lives in the library so the parser is unit
//! tested; the binary is a thin `main`.

use sna_cells::Technology;
use sna_spice::backend::BackendKind;
use sna_spice::solver::SolverKind;
use sna_spice::units::PS;

use crate::corners::corner_by_name;
use crate::deck::{deck_to_csv, deck_to_json, deck_to_text, run_deck_file, DeckOptions};
use crate::driver::FlowOptions;
use crate::metrics::metrics_to_json;
use crate::output::{to_csv, to_json, to_text, RunSummary};

/// Output format of the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable summary table.
    Text,
    /// `sna-report-v1` JSON document.
    Json,
    /// One CSV row per net per corner.
    Csv,
}

/// How chatty the stderr diagnostics are. Stdout (the report) is never
/// affected: the levels only gate the out-of-band progress lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No stderr diagnostics at all.
    Quiet,
    /// Cache and throughput summary lines (the default).
    Normal,
    /// Normal plus a one-line phase-timing summary.
    Verbose,
}

/// Parsed CLI configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CliConfig {
    /// Clusters per corner.
    pub clusters: usize,
    /// Design-generator seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Corner names, in sweep order.
    pub corners: Vec<String>,
    /// Run the worst-case alignment search.
    pub worst_case: bool,
    /// NRC guard band (V).
    pub guard_band: f64,
    /// Abort on the first per-cluster failure.
    pub strict: bool,
    /// Report format.
    pub format: Format,
    /// Linear-solver selection for the interconnect-reduction (PRIMA)
    /// solves *and* every characterization analysis (DC sweeps, NRC
    /// bisection and propagated-noise transients).
    pub solver: SolverKind,
    /// Compute backend for the K-lane batched characterization sweeps
    /// (bit-identical results across backends).
    pub backend: BackendKind,
    /// Write an `sna-metrics-v1` JSON document here after the run.
    pub metrics: Option<String>,
    /// Write a chrome-trace (`chrome://tracing` / Perfetto) JSON here.
    pub profile: Option<String>,
    /// stderr diagnostics level.
    pub log_level: LogLevel,
    /// SPICE deck to analyze instead of the synthetic design generator.
    pub deck: Option<String>,
    /// Fallback noise threshold (V) for deck cases without `threshold=`.
    pub threshold: Option<f64>,
    /// Victim node for decks without a `.sna` card.
    pub victim: Option<String>,
    /// Aggressor sources for decks without a `.sna` card.
    pub aggressors: Vec<String>,
    /// Persistent characterization cache (`sna-libcache-v1`) to warm the
    /// library from before the run and rewrite after it.
    pub library_cache: Option<String>,
    /// Run the long-lived `sna serve` query loop instead of one batch run.
    pub serve: bool,
    /// FRAME constraint file (switching windows / mutual exclusion) applied
    /// to the generated design before analysis.
    pub windows: Option<String>,
    /// Grid points per constrained aggressor window in the FRAME search.
    pub frame_grid: usize,
    /// Enumerate the full candidate space (pruning disabled) — the
    /// reference mode the pruned search is byte-compared against.
    pub frame_exhaustive: bool,
}

impl Default for CliConfig {
    fn default() -> Self {
        Self {
            clusters: 12,
            seed: 2005,
            threads: 0,
            corners: vec!["cmos130".into()],
            worst_case: false,
            guard_band: 0.1,
            strict: false,
            format: Format::Text,
            solver: SolverKind::Auto,
            backend: BackendKind::default(),
            metrics: None,
            profile: None,
            log_level: LogLevel::Normal,
            deck: None,
            threshold: None,
            victim: None,
            aggressors: Vec::new(),
            library_cache: None,
            serve: false,
            windows: None,
            frame_grid: 4,
            frame_exhaustive: false,
        }
    }
}

/// The `--help` text.
pub const USAGE: &str = "\
sna — parallel full-chip static noise analysis (Forzan & Pandini macromodel)

USAGE:
    sna [OPTIONS]
    sna --deck <FILE> [OPTIONS]
    sna serve [OPTIONS]

SERVE MODE:
    sna serve             hold the design and characterization library in
                          memory and answer newline-delimited JSON queries
                          on stdin (one response per line on stdout):
                          {\"cmd\":\"analyze\"[,\"clusters\":[...]]} analyzes,
                          re-running only clusters whose fingerprints
                          changed; {\"cmd\":\"edit\",\"cluster\":...} mutates a
                          cluster; {\"cmd\":\"guard_band\",\"value\":v},
                          {\"cmd\":\"stats\"} and {\"cmd\":\"shutdown\"} do what
                          they say. Honors --library-cache across sessions.

DECK MODE:
    --deck <FILE>         analyze a SPICE deck (.subckt hierarchies are
                          flattened; .model, E/G/F/H controlled sources,
                          .ic and .include are honored) instead of the
                          synthetic design generator; needs a .tran card
    --threshold <V>       fallback noise threshold for .sna cards without
                          threshold=, and for the --victim path
    --victim <NODE>       victim node when the deck has no .sna card
    --aggressors <LIST>   comma-separated aggressor V/I source names for
                          the --victim path                  [default: none]

OPTIONS:
    --clusters <N>        clusters per corner                 [default: 12]
    --seed <S>            design-generator seed               [default: 2005]
    --threads <T>         worker threads, 0 = auto            [default: 0]
    --corners <LIST>      comma-separated technology nodes    [default: cmos130]
                          (available: cmos130, cmos90)
    --worst-case          run the worst-case alignment search per cluster
    --guard-band <V>      NRC margin guard band in volts      [default: 0.1]
    --strict              abort on the first per-cluster failure instead of
                          downgrading it to a skipped-net diagnostic
    --format <F>          text | json | csv                   [default: text]
    --solver <S>          auto | auto:<N> | dense | sparse    [default: auto]
                          linear-solver selection for the interconnect-
                          reduction (PRIMA) solves and every
                          characterization analysis; auto:<N> switches to
                          sparse at system dimension N
    --backend <B>         scalar | batched                    [default: scalar]
                          compute backend for the K-lane batched
                          characterization sweeps (results are
                          bit-identical across backends)
    --windows <FILE>      FRAME constraint file: per-aggressor switching
                          windows and mutual-exclusion groups (plus victim
                          sensitivity windows) applied to the generated
                          design; constrained clusters report both the
                          pessimistic and the constrained margin
    --frame-grid <N>      grid points per constrained aggressor window in
                          the FRAME alignment search        [default: 4]
    --frame-exhaustive    enumerate the full constrained candidate space
                          (disable window/mexcl pruning); on a fully
                          feasible design the report is byte-identical to
                          the pruned run
    --library-cache <P>   persistent characterization cache file
                          (sna-libcache-v1): loaded before the run (stale
                          or corrupt entries are rejected and recomputed),
                          rewritten after it. A warm second run performs
                          zero characterization solves.
    --metrics <PATH>      write an sna-metrics-v1 JSON document (solver /
                          dc / tran / sweep counters, cache breakdown,
                          pool timings, phase tree) after the run
    --profile <PATH>      write a chrome-trace JSON (load in
                          chrome://tracing or https://ui.perfetto.dev)
    --quiet               suppress all stderr diagnostics
    --verbose             add a one-line phase-timing summary to stderr
    --help                print this help

The report (stdout) is a pure function of the design and options: a run at
--threads N is byte-identical to --threads 1, with or without --metrics or
--profile. Cache statistics and timing go to stderr; metrics and profiles
go to their own files, never stdout.";

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("bad value '{raw}' for {flag}"))
}

/// Parse CLI arguments (without the program name).
///
/// # Errors
///
/// Returns a message suitable for printing alongside [`USAGE`]; the
/// special value `Err("help")` means `--help` was requested.
pub fn parse_args(args: &[String]) -> Result<CliConfig, String> {
    let mut cfg = CliConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clusters" => cfg.clusters = parse_value(arg, it.next())?,
            "--seed" => cfg.seed = parse_value(arg, it.next())?,
            "--threads" => cfg.threads = parse_value(arg, it.next())?,
            "--guard-band" => {
                cfg.guard_band = parse_value(arg, it.next())?;
                if !cfg.guard_band.is_finite() || cfg.guard_band < 0.0 {
                    return Err(format!(
                        "--guard-band must be a non-negative voltage, got {}",
                        cfg.guard_band
                    ));
                }
            }
            "--corners" => {
                let raw: String = parse_value(arg, it.next())?;
                cfg.corners = raw.split(',').map(|s| s.trim().to_string()).collect();
                if cfg.corners.iter().any(String::is_empty) {
                    return Err("--corners has an empty entry".into());
                }
            }
            "--worst-case" => cfg.worst_case = true,
            "--strict" => cfg.strict = true,
            "--format" => {
                let raw: String = parse_value(arg, it.next())?;
                cfg.format = match raw.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--solver" => {
                let raw: String = parse_value(arg, it.next())?;
                cfg.solver = match raw.as_str() {
                    "auto" => SolverKind::Auto,
                    "dense" => SolverKind::Dense,
                    "sparse" => SolverKind::Sparse,
                    other => match other.strip_prefix("auto:") {
                        Some(t) => SolverKind::AutoThreshold(t.parse().map_err(|_| {
                            format!("bad auto threshold '{t}' in --solver {other}")
                        })?),
                        None => return Err(format!("unknown solver '{other}'")),
                    },
                };
            }
            "--backend" => {
                let raw: String = parse_value(arg, it.next())?;
                cfg.backend = match raw.as_str() {
                    "scalar" => BackendKind::Scalar,
                    "batched" => BackendKind::Batched,
                    other => return Err(format!("unknown backend '{other}'")),
                };
            }
            "--deck" => cfg.deck = Some(parse_value(arg, it.next())?),
            "--threshold" => {
                let v: f64 = parse_value(arg, it.next())?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("--threshold must be a positive voltage, got {v}"));
                }
                cfg.threshold = Some(v);
            }
            "--victim" => cfg.victim = Some(parse_value(arg, it.next())?),
            "--aggressors" => {
                let raw: String = parse_value(arg, it.next())?;
                cfg.aggressors = raw.split(',').map(|s| s.trim().to_string()).collect();
                if cfg.aggressors.iter().any(String::is_empty) {
                    return Err("--aggressors has an empty entry".into());
                }
            }
            "--library-cache" => cfg.library_cache = Some(parse_value(arg, it.next())?),
            "--windows" => cfg.windows = Some(parse_value(arg, it.next())?),
            "--frame-grid" => {
                cfg.frame_grid = parse_value(arg, it.next())?;
                if cfg.frame_grid == 0 {
                    return Err("--frame-grid must be at least 1".into());
                }
            }
            "--frame-exhaustive" => cfg.frame_exhaustive = true,
            "serve" => cfg.serve = true,
            "--metrics" => cfg.metrics = Some(parse_value(arg, it.next())?),
            "--profile" => cfg.profile = Some(parse_value(arg, it.next())?),
            "--quiet" => cfg.log_level = LogLevel::Quiet,
            "--verbose" => cfg.log_level = LogLevel::Verbose,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(cfg)
}

/// Execute a parsed configuration and render the report.
///
/// Returns the rendered report for stdout; writes cache/timing diagnostics
/// to stderr.
///
/// # Errors
///
/// Propagates corner resolution, NRC characterization, and (strict-mode)
/// per-cluster failures.
pub fn run(cfg: &CliConfig) -> sna_spice::error::Result<String> {
    // Observability is strictly out-of-band: enabling it changes stderr and
    // the metrics/profile files, never the report on stdout.
    if cfg.metrics.is_some() || cfg.profile.is_some() || cfg.log_level == LogLevel::Verbose {
        sna_obs::set_timing_enabled(true);
    }
    if cfg.profile.is_some() {
        sna_obs::set_tracing_enabled(true);
    }
    if cfg.serve {
        // Serve owns stdin/stdout for its query loop; there is no batch
        // report to render.
        crate::serve::run_serve(cfg)?;
        return Ok(String::new());
    }
    if let Some(deck) = &cfg.deck {
        return run_deck_mode(cfg, deck);
    }
    let corners: Vec<Technology> = cfg
        .corners
        .iter()
        .map(|name| corner_by_name(name))
        .collect::<sna_spice::error::Result<_>>()?;
    let windows = match &cfg.windows {
        Some(path) => crate::windows::load_windows(std::path::Path::new(path))?,
        None => Vec::new(),
    };
    let opts = FlowOptions {
        sna: sna_core::sna::SnaOptions {
            align_worst_case: cfg.worst_case,
            align_window: 400.0 * PS,
            margin_band: cfg.guard_band,
            strict: cfg.strict,
            frame_grid: cfg.frame_grid,
            frame_exhaustive: cfg.frame_exhaustive,
        },
        mm: sna_core::cluster::MacromodelOptions {
            solver: cfg.solver,
            backend: cfg.backend,
            ..Default::default()
        },
        threads: cfg.threads,
    };
    let library = sna_core::library::NoiseModelLibrary::new();
    if let Some(path) = &cfg.library_cache {
        let load = crate::cache::load_library_cache(std::path::Path::new(path), &library);
        if cfg.log_level >= LogLevel::Normal {
            eprintln!("{}", load.message);
        }
    }
    let started = std::time::Instant::now();
    let corner_reports = crate::corners::run_corners_windowed(
        &corners,
        cfg.clusters,
        cfg.seed,
        &opts,
        &library,
        &windows,
    )?;
    let elapsed = started.elapsed();
    if let Some(path) = &cfg.library_cache {
        match crate::cache::save_library_cache(std::path::Path::new(path), &library) {
            Ok(bytes) => {
                if cfg.log_level >= LogLevel::Normal {
                    eprintln!("library cache '{path}': wrote {bytes} bytes");
                }
            }
            // A failed save must not fail the analysis: the report is
            // already computed and correct.
            Err(e) => eprintln!("warning: {e}"),
        }
    }
    let total_clusters: usize = corner_reports.iter().map(|c| c.flow.report.total()).sum();
    if cfg.log_level >= LogLevel::Normal {
        for c in &corner_reports {
            eprintln!(
                "[{}] {} threads, cache {} hits / {} misses",
                c.tech, c.flow.threads, c.flow.cache.hits, c.flow.cache.misses
            );
        }
        eprintln!(
            "analyzed {} clusters in {:.2} s ({:.1} clusters/s)",
            total_clusters,
            elapsed.as_secs_f64(),
            total_clusters as f64 / elapsed.as_secs_f64().max(1e-9),
        );
    }
    if cfg.metrics.is_some() || cfg.log_level == LogLevel::Verbose {
        let snap = sna_obs::snapshot();
        if cfg.log_level == LogLevel::Verbose {
            let timed: Vec<String> = sna_obs::ALL_PHASES
                .iter()
                .filter_map(|&p| {
                    let ns = snap.phase_nanos(p);
                    (ns > 0).then(|| format!("{} {:.1}ms", p.name(), ns as f64 / 1e6))
                })
                .collect();
            eprintln!("phases: {}", timed.join(", "));
        }
        if let Some(path) = &cfg.metrics {
            let doc = metrics_to_json(&snap, &corner_reports, elapsed.as_secs_f64());
            std::fs::write(path, doc).map_err(|e| {
                sna_spice::error::Error::InvalidAnalysis(format!(
                    "cannot write metrics file '{path}': {e}"
                ))
            })?;
        }
    }
    if let Some(path) = &cfg.profile {
        std::fs::write(path, sna_obs::render_chrome_trace()).map_err(|e| {
            sna_spice::error::Error::InvalidAnalysis(format!(
                "cannot write profile file '{path}': {e}"
            ))
        })?;
    }
    let run = RunSummary {
        clusters: cfg.clusters,
        seed: cfg.seed,
        align_worst_case: cfg.worst_case,
        margin_band: cfg.guard_band,
        corners: corner_reports,
    };
    Ok(match cfg.format {
        Format::Text => to_text(&run),
        Format::Json => to_json(&run),
        Format::Csv => to_csv(&run),
    })
}

/// Deck-mode half of [`run`]: parse the deck, run its `.sna` cases, render.
/// Shares the observability plumbing (stderr diagnostics, `--metrics`,
/// `--profile`) with the synthetic flow; the stdout report stays a pure
/// function of the deck and options.
fn run_deck_mode(cfg: &CliConfig, deck: &str) -> sna_spice::error::Result<String> {
    let threads = if cfg.threads == 0 {
        crate::pool::auto_threads()
    } else {
        cfg.threads
    };
    let opts = DeckOptions {
        threshold: cfg.threshold,
        victim: cfg.victim.clone(),
        aggressors: cfg.aggressors.clone(),
        guard_band: cfg.guard_band,
        strict: cfg.strict,
        threads,
        solver: cfg.solver,
        backend: cfg.backend,
    };
    let started = std::time::Instant::now();
    let report = run_deck_file(std::path::Path::new(deck), &opts)?;
    let elapsed = started.elapsed();
    if cfg.log_level >= LogLevel::Normal {
        eprintln!(
            "[deck] {} cases ({} skipped) in {:.2} s on {} threads",
            report.findings.len(),
            report.skipped.len(),
            elapsed.as_secs_f64(),
            threads,
        );
    }
    if cfg.metrics.is_some() || cfg.log_level == LogLevel::Verbose {
        let snap = sna_obs::snapshot();
        if cfg.log_level == LogLevel::Verbose {
            let timed: Vec<String> = sna_obs::ALL_PHASES
                .iter()
                .filter_map(|&p| {
                    let ns = snap.phase_nanos(p);
                    (ns > 0).then(|| format!("{} {:.1}ms", p.name(), ns as f64 / 1e6))
                })
                .collect();
            eprintln!("phases: {}", timed.join(", "));
        }
        if let Some(path) = &cfg.metrics {
            let doc = metrics_to_json(&snap, &[], elapsed.as_secs_f64());
            std::fs::write(path, doc).map_err(|e| {
                sna_spice::error::Error::InvalidAnalysis(format!(
                    "cannot write metrics file '{path}': {e}"
                ))
            })?;
        }
    }
    if let Some(path) = &cfg.profile {
        std::fs::write(path, sna_obs::render_chrome_trace()).map_err(|e| {
            sna_spice::error::Error::InvalidAnalysis(format!(
                "cannot write profile file '{path}': {e}"
            ))
        })?;
    }
    Ok(match cfg.format {
        Format::Text => deck_to_text(&report),
        Format::Json => deck_to_json(&report),
        Format::Csv => deck_to_csv(&report),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_args() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg, CliConfig::default());
    }

    #[test]
    fn full_flag_set_parses() {
        let cfg = parse_args(&args(&[
            "--clusters",
            "64",
            "--seed",
            "9",
            "--threads",
            "4",
            "--corners",
            "cmos130,cmos90",
            "--worst-case",
            "--guard-band",
            "0.05",
            "--strict",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(cfg.clusters, 64);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.corners, ["cmos130", "cmos90"]);
        assert!(cfg.worst_case);
        assert_eq!(cfg.guard_band, 0.05);
        assert!(cfg.strict);
        assert_eq!(cfg.format, Format::Json);
        assert_eq!(cfg.solver, SolverKind::Auto);
    }

    #[test]
    fn solver_flag_parses_all_backends() {
        for (raw, want) in [
            ("auto", SolverKind::Auto),
            ("dense", SolverKind::Dense),
            ("sparse", SolverKind::Sparse),
        ] {
            let cfg = parse_args(&args(&["--solver", raw])).unwrap();
            assert_eq!(cfg.solver, want);
        }
        assert!(parse_args(&args(&["--solver", "magic"]))
            .unwrap_err()
            .contains("unknown solver"));
    }

    #[test]
    fn solver_auto_threshold_parses() {
        let cfg = parse_args(&args(&["--solver", "auto:64"])).unwrap();
        assert_eq!(cfg.solver, SolverKind::AutoThreshold(64));
        assert!(parse_args(&args(&["--solver", "auto:lots"]))
            .unwrap_err()
            .contains("bad auto threshold"));
    }

    #[test]
    fn backend_flag_parses() {
        assert_eq!(parse_args(&[]).unwrap().backend, BackendKind::Scalar);
        let cfg = parse_args(&args(&["--backend", "batched"])).unwrap();
        assert_eq!(cfg.backend, BackendKind::Batched);
        let cfg = parse_args(&args(&["--backend", "scalar"])).unwrap();
        assert_eq!(cfg.backend, BackendKind::Scalar);
        assert!(parse_args(&args(&["--backend", "gpu"]))
            .unwrap_err()
            .contains("unknown backend"));
    }

    #[test]
    fn observability_flags_parse() {
        let cfg = parse_args(&args(&[
            "--metrics",
            "m.json",
            "--profile",
            "trace.json",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(cfg.metrics.as_deref(), Some("m.json"));
        assert_eq!(cfg.profile.as_deref(), Some("trace.json"));
        assert_eq!(cfg.log_level, LogLevel::Verbose);
        // Last level flag wins.
        let cfg = parse_args(&args(&["--verbose", "--quiet"])).unwrap();
        assert_eq!(cfg.log_level, LogLevel::Quiet);
        assert!(parse_args(&args(&["--metrics"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn bad_inputs_rejected_with_context() {
        assert!(parse_args(&args(&["--clusters"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_args(&args(&["--clusters", "many"]))
            .unwrap_err()
            .contains("bad value"));
        assert!(parse_args(&args(&["--format", "xml"]))
            .unwrap_err()
            .contains("unknown format"));
        assert!(parse_args(&args(&["--guard-band", "-1"]))
            .unwrap_err()
            .contains("non-negative"));
        assert!(parse_args(&args(&["--wat"]))
            .unwrap_err()
            .contains("unknown option"));
        assert_eq!(parse_args(&args(&["--help"])).unwrap_err(), "help");
    }

    #[test]
    fn frame_flags_parse() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.windows, None);
        assert_eq!(cfg.frame_grid, 4);
        assert!(!cfg.frame_exhaustive);
        let cfg = parse_args(&args(&[
            "--windows",
            "win.txt",
            "--frame-grid",
            "7",
            "--frame-exhaustive",
        ]))
        .unwrap();
        assert_eq!(cfg.windows.as_deref(), Some("win.txt"));
        assert_eq!(cfg.frame_grid, 7);
        assert!(cfg.frame_exhaustive);
        assert!(parse_args(&args(&["--frame-grid", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_args(&args(&["--windows"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(USAGE.contains("--windows"));
        assert!(USAGE.contains("--frame-exhaustive"));
    }

    #[test]
    fn windows_file_flows_into_the_report() {
        let dir = std::env::temp_dir().join("sna_cli_windows_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("win.txt");
        // Tight windows around t=0 prune aggressors whose edges cannot
        // reach the victim sensitivity interval.
        std::fs::write(
            &path,
            "net000 0 window 1e-9 3e-9\nnet000 0 mexcl 1\nnet000 victim sensitivity 0 6e-9\n",
        )
        .unwrap();
        let cfg = CliConfig {
            clusters: 2,
            threads: 1,
            format: Format::Json,
            log_level: LogLevel::Quiet,
            windows: Some(path.display().to_string()),
            ..Default::default()
        };
        let j = run(&cfg).expect("windowed run");
        assert!(
            j.contains("\"constrained_margin_v\": ") && j.contains("\"frame\": {"),
            "constrained cluster must report a frame block:\n{j}"
        );
        // The pessimistic report is unchanged by constraints on net000's
        // sibling: net001 keeps the stable null.
        assert!(j.contains("\"constrained_margin_v\": null"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_and_serve_flags_parse() {
        let cfg = parse_args(&args(&["--library-cache", "lib.snc"])).unwrap();
        assert_eq!(cfg.library_cache.as_deref(), Some("lib.snc"));
        assert!(!cfg.serve);
        let cfg = parse_args(&args(&["serve", "--clusters", "4"])).unwrap();
        assert!(cfg.serve);
        assert_eq!(cfg.clusters, 4);
        assert!(parse_args(&args(&["--library-cache"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(USAGE.contains("--library-cache"));
        assert!(USAGE.contains("sna serve"));
    }

    #[test]
    fn library_cache_round_trip_through_run() {
        let dir = std::env::temp_dir().join("sna_cli_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lib.snc");
        std::fs::remove_file(&path).ok();
        let cfg = CliConfig {
            clusters: 2,
            threads: 1,
            format: Format::Json,
            log_level: LogLevel::Quiet,
            library_cache: Some(path.display().to_string()),
            ..Default::default()
        };
        let cold = run(&cfg).expect("cold run");
        assert!(path.exists(), "cache file written after the run");
        let warm = run(&cfg).expect("warm run");
        // Persistence must be invisible in the report.
        assert_eq!(cold, warm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deck_flags_parse() {
        let cfg = parse_args(&args(&[
            "--deck",
            "bus.cir",
            "--threshold",
            "0.4",
            "--victim",
            "vic",
            "--aggressors",
            "Va1, Va2",
        ]))
        .unwrap();
        assert_eq!(cfg.deck.as_deref(), Some("bus.cir"));
        assert_eq!(cfg.threshold, Some(0.4));
        assert_eq!(cfg.victim.as_deref(), Some("vic"));
        assert_eq!(cfg.aggressors, ["Va1", "Va2"]);
        assert!(parse_args(&args(&["--threshold", "-0.2"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_args(&args(&["--aggressors", "Va1,,Va2"]))
            .unwrap_err()
            .contains("empty entry"));
    }

    #[test]
    fn run_deck_mode_end_to_end() {
        let dir = std::env::temp_dir().join("sna_cli_deck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pair.cir");
        std::fs::write(
            &path,
            "* pair\nVa agg 0 PULSE(0 1.2 1n 0.2n 0.2n 2n)\nCc agg vic 20f\n\
             Rv vic 0 2k\nCv vic 0 30f\n.tran 0.05n 6n\n\
             .sna victim=vic aggressors=Va threshold=0.4\n",
        )
        .unwrap();
        let cfg = CliConfig {
            deck: Some(path.display().to_string()),
            format: Format::Json,
            log_level: LogLevel::Quiet,
            ..Default::default()
        };
        let json = run(&cfg).expect("deck run");
        assert!(json.contains("\"schema\": \"sna-deck-report-v1\""));
        assert!(json.contains("\"victim\": \"vic\""));
        let text = run(&CliConfig {
            format: Format::Text,
            ..cfg.clone()
        })
        .expect("deck text run");
        assert!(text.contains("summary:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_produces_all_three_formats() {
        let cfg = CliConfig {
            clusters: 2,
            threads: 2,
            ..Default::default()
        };
        let text = run(&cfg).expect("text run");
        assert!(text.contains("[cmos130]"));
        let json = run(&CliConfig {
            format: Format::Json,
            ..cfg.clone()
        })
        .expect("json run");
        assert!(json.contains("\"schema\": \"sna-report-v1\""));
        assert!(json.contains("\"net\": \"net000\""));
        let csv = run(&CliConfig {
            format: Format::Csv,
            ..cfg
        })
        .expect("csv run");
        assert!(csv.starts_with("corner,net,verdict"));
        assert_eq!(csv.lines().count(), 3); // header + 2 nets
    }

    #[test]
    fn unknown_corner_fails_at_run_time() {
        let cfg = CliConfig {
            corners: vec!["cmos7".into()],
            ..Default::default()
        };
        assert!(run(&cfg).is_err());
    }
}
