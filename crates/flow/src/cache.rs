//! File I/O for the persistent characterization cache (`--library-cache`).
//!
//! The on-disk format itself (`sna-libcache-v1`) lives in
//! [`sna_core::library::cache`]; this module is the thin, *forgiving*
//! layer between that format and the filesystem. The contract is that a
//! cache file can never make a run fail or lie:
//!
//! * a missing file means a cold start (first run, or the file was
//!   deleted) — not an error;
//! * a structurally corrupt file (bad magic, wrong version, truncation)
//!   is reported as a diagnostic and ignored — the run proceeds cold and
//!   rewrites a good file on exit;
//! * entries whose fingerprints do not match their payload are rejected
//!   individually inside the decoder (counted as `stale_rejected`) and
//!   simply recomputed.
//!
//! Only *writing* the cache can error (the caller asked for persistence
//! and did not get it), and even that is surfaced by the CLI as a warning
//! rather than a failed analysis.

use std::path::Path;

use sna_core::library::cache::SCHEMA;
use sna_core::library::NoiseModelLibrary;
use sna_spice::error::{Error, Result};

/// What loading a cache file did, for the CLI's stderr diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLoad {
    /// Entries adopted into the library.
    pub entries: usize,
    /// Entries whose stored fingerprint did not match their payload.
    pub stale_rejected: usize,
    /// One human-readable line describing what happened.
    pub message: String,
}

/// Load `path` into `library`, tolerating every way the file can be bad.
///
/// Never errors: a missing or corrupt file degrades to a cold start with
/// an explanatory [`CacheLoad::message`].
pub fn load_library_cache(path: &Path, library: &NoiseModelLibrary) -> CacheLoad {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return CacheLoad {
                entries: 0,
                stale_rejected: 0,
                message: format!(
                    "library cache '{}' not found, starting cold",
                    path.display()
                ),
            }
        }
        Err(e) => {
            return CacheLoad {
                entries: 0,
                stale_rejected: 0,
                message: format!(
                    "cannot read library cache '{}' ({e}), starting cold",
                    path.display()
                ),
            }
        }
    };
    match library.load_cache_bytes(&bytes) {
        Ok(stats) => CacheLoad {
            entries: stats.loaded,
            stale_rejected: stats.stale_rejected,
            message: format!(
                "library cache '{}': loaded {} entries ({} stale rejected)",
                path.display(),
                stats.loaded,
                stats.stale_rejected
            ),
        },
        Err(e) => CacheLoad {
            entries: 0,
            stale_rejected: 0,
            message: format!(
                "library cache '{}' is not a valid {SCHEMA} file ({e}), starting cold",
                path.display()
            ),
        },
    }
}

/// Serialize `library` to `path`, returning the bytes written.
///
/// Because the load step ran first, the library is a superset of the old
/// file's valid entries, so overwriting never loses information.
///
/// # Errors
///
/// Fails only on filesystem errors (unwritable path, full disk).
pub fn save_library_cache(path: &Path, library: &NoiseModelLibrary) -> Result<usize> {
    let bytes = library.to_cache_bytes();
    std::fs::write(path, &bytes).map_err(|e| {
        Error::InvalidAnalysis(format!(
            "cannot write library cache '{}': {e}",
            path.display()
        ))
    })?;
    Ok(bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_cells::{Cell, Technology};
    use sna_spice::solver::SolverKind;
    use sna_spice::units::PS;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sna_flow_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn seeded_library() -> NoiseModelLibrary {
        let lib = NoiseModelLibrary::new();
        let tech = Technology::cmos130();
        let widths = [100.0 * PS, 200.0 * PS, 400.0 * PS];
        lib.nrc(&Cell::inv(tech, 1.0), true, &widths, SolverKind::Auto)
            .expect("nrc characterization");
        lib
    }

    #[test]
    fn missing_file_is_a_cold_start_not_an_error() {
        let lib = NoiseModelLibrary::new();
        let load = load_library_cache(Path::new("/nonexistent/sna.libcache"), &lib);
        assert_eq!(load.entries, 0);
        assert!(load.message.contains("not found"), "{}", load.message);
    }

    #[test]
    fn save_then_load_round_trips_with_diagnostics() {
        let path = tmp("round_trip.libcache");
        let lib = seeded_library();
        let bytes = save_library_cache(&path, &lib).expect("save");
        assert!(bytes > 0);
        let warm = NoiseModelLibrary::new();
        let load = load_library_cache(&path, &warm);
        assert_eq!(load.entries, 1);
        assert_eq!(load.stale_rejected, 0);
        assert!(
            load.message.contains("loaded 1 entries"),
            "{}",
            load.message
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_degrades_to_cold_start() {
        let path = tmp("corrupt.libcache");
        std::fs::write(&path, b"definitely not a cache file").unwrap();
        let lib = NoiseModelLibrary::new();
        let load = load_library_cache(&path, &lib);
        assert_eq!(load.entries, 0);
        assert!(load.message.contains(SCHEMA), "{}", load.message);
        assert!(load.message.contains("starting cold"), "{}", load.message);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unwritable_path_errors_on_save() {
        let lib = NoiseModelLibrary::new();
        let err = save_library_cache(Path::new("/nonexistent/dir/sna.libcache"), &lib);
        assert!(err.is_err());
    }
}
