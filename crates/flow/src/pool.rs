//! A hand-rolled order-preserving worker pool.
//!
//! The build environment vendors no `rayon`, so the flow brings its own
//! executor: N scoped `std::thread` workers self-schedule chunks of the
//! job index space off a shared atomic cursor (chunked work sharing — the
//! same load-balancing effect as work stealing for an indexed job list,
//! without per-worker deques), stream `(index, result)` pairs back over an
//! mpsc channel, and the caller slots results by index. The output vector
//! is therefore in *job order* regardless of which worker ran what when:
//! an N-thread map is element-for-element identical to a 1-thread map, the
//! property the SNA flow's determinism guarantee rests on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Number of chunks each worker should expect to claim on a balanced
/// workload. Smaller chunks balance better when job costs vary (cluster
/// solve times span ~an order of magnitude with aggressor count and wire
/// length); larger chunks amortize cursor contention. 4 per worker is the
/// classic guided-scheduling compromise.
const CHUNKS_PER_WORKER: usize = 4;

/// Execution metrics of one pool run, reported out-of-band: the mapped
/// results are bit-identical whether or not anyone looks at these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Nanoseconds each worker spent inside job closures (busy time).
    pub worker_busy_nanos: Vec<u64>,
    /// Jobs completed per worker.
    pub worker_jobs: Vec<usize>,
    /// Chunks claimed off the shared cursor per worker.
    pub worker_chunks: Vec<usize>,
    /// Wall time of each job (ns), in job order.
    pub job_nanos: Vec<u64>,
    /// Wall time of the whole map (ns).
    pub wall_nanos: u64,
}

/// Map `f` over `items` on `threads` workers, preserving item order in the
/// output. `f(i, &items[i])` must be a pure function of its arguments (plus
/// internally-synchronized shared state) for the determinism guarantee to
/// mean anything; the pool itself never reorders results.
///
/// `threads` is clamped to `1..=items.len()`; with one thread the map runs
/// inline on the caller with zero scheduling overhead, so `threads = 1` is
/// the exact serial semantics, not a degenerate pool.
pub fn parallel_map_ordered<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_ordered_metered(threads, items, f).0
}

/// As [`parallel_map_ordered`], additionally reporting per-worker and
/// per-job timing as [`PoolMetrics`]. The two Instant reads per job are
/// noise against cluster-solve costs, so the plain API is just a wrapper
/// that drops the metrics.
pub fn parallel_map_ordered_metered<T, R, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, PoolMetrics)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return (Vec::new(), PoolMetrics::default());
    }
    let t_wall = Instant::now();
    let threads = threads.clamp(1, n);
    let mut metrics = PoolMetrics {
        job_nanos: vec![0; n],
        ..PoolMetrics::default()
    };
    if threads == 1 {
        let out = items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let t = Instant::now();
                let r = f(i, it);
                metrics.job_nanos[i] = t.elapsed().as_nanos() as u64;
                r
            })
            .collect();
        metrics.worker_busy_nanos = vec![metrics.job_nanos.iter().sum()];
        metrics.worker_jobs = vec![n];
        metrics.worker_chunks = vec![1];
        metrics.wall_nanos = t_wall.elapsed().as_nanos() as u64;
        return (out, metrics);
    }
    let chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R, u64)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut worker_stats = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let (mut busy, mut jobs, mut chunks) = (0u64, 0usize, 0usize);
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        chunks += 1;
                        let end = (start + chunk).min(n);
                        for (off, item) in items[start..end].iter().enumerate() {
                            let i = start + off;
                            let t = Instant::now();
                            let r = f(i, item);
                            let ns = t.elapsed().as_nanos() as u64;
                            busy += ns;
                            jobs += 1;
                            // The receiver lives for the whole scope, so send
                            // only fails if the caller's collection loop
                            // panicked; bail quietly rather than double-panic.
                            if tx.send((i, r, ns)).is_err() {
                                return (busy, jobs, chunks);
                            }
                        }
                    }
                    (busy, jobs, chunks)
                })
            })
            .collect();
        drop(tx); // the scope's clones keep the channel open as needed
        for (i, r, ns) in rx {
            slots[i] = Some(r);
            metrics.job_nanos[i] = ns;
        }
        for h in handles {
            worker_stats.push(h.join().expect("pool worker panicked"));
        }
    });
    for (busy, jobs, chunks) in worker_stats {
        metrics.worker_busy_nanos.push(busy);
        metrics.worker_jobs.push(jobs);
        metrics.worker_chunks.push(chunks);
    }
    metrics.wall_nanos = t_wall.elapsed().as_nanos() as u64;
    let out = slots
        .into_iter()
        .map(|slot| slot.expect("every job index produces exactly one result"))
        .collect();
    (out, metrics)
}

/// The thread count to use when the caller passes 0 ("auto"): the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let serial = parallel_map_ordered(1, &items, |i, &x| i * 1000 + x * x);
        for threads in [2, 3, 4, 8, 64] {
            let par = parallel_map_ordered(threads, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..57).collect();
        parallel_map_ordered(4, &items, |i, _| hits[i].fetch_add(1, Ordering::Relaxed));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_ordered::<_, u32, _>(4, &empty, |_, &x| x).is_empty());
        // More threads than items: clamped, still one result per item.
        assert_eq!(parallel_map_ordered(16, &[7u32, 9], |_, &x| x + 1), [8, 10]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        parallel_map_ordered(4, &items, |_, _| {
            // Sleeping forces the scheduler to run the other workers even
            // on a single hardware thread, so one worker cannot race
            // through every chunk before the rest are scheduled.
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "work must be spread across workers"
        );
    }

    #[test]
    fn auto_threads_is_positive() {
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn metered_map_accounts_every_job_to_exactly_one_worker() {
        let items: Vec<usize> = (0..41).collect();
        for threads in [1, 4] {
            let (out, m) = parallel_map_ordered_metered(threads, &items, |_, &x| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                x * 2
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
            assert_eq!(m.worker_busy_nanos.len(), threads);
            assert_eq!(m.worker_jobs.iter().sum::<usize>(), items.len());
            assert!(m.worker_chunks.iter().sum::<usize>() >= 1);
            assert_eq!(m.job_nanos.len(), items.len());
            assert!(m.job_nanos.iter().all(|&ns| ns > 0));
            // Busy time is the sum of the per-job walls, give or take
            // bookkeeping; wall covers the whole map.
            assert!(m.wall_nanos > 0);
            assert!(m.worker_busy_nanos.iter().sum::<u64>() >= m.job_nanos.iter().sum::<u64>());
        }
    }
}
