//! The `sna` command-line entry point. All logic lives in `sna_flow::cli`
//! so it stays unit-testable; this is only flag plumbing and exit codes.

use std::process::ExitCode;

use sna_flow::cli::{parse_args, run, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&cfg) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
