//! Switching-window constraint files (`--windows`).
//!
//! The synthetic design generator knows nothing about timing correlation,
//! so FRAME constraints arrive out-of-band: a plain-text sidecar file maps
//! net names to per-aggressor switching windows and mutual-exclusion
//! groups, plus an optional victim sensitivity window. The grammar is one
//! directive per line (`#` comments and blank lines ignored), times in
//! seconds:
//!
//! ```text
//! # net  aggressor-index  directive  args...
//! net000 0 window 1e-9 3e-9      # aggressor 0 may switch in [1ns, 3ns]
//! net000 1 mexcl 2               # aggressor 1 joins mutual-exclusion group 2
//! net000 victim sensitivity 0.5e-9 2e-9
//! ```
//!
//! Edits are parsed eagerly (every error carries its line number) and
//! applied to a [`Design`] after generation; the patched specs are
//! re-validated so a bad window fails the run up front rather than deep in
//! the analysis.

use sna_core::cluster::SwitchingWindow;
use sna_core::sna::Design;
use sna_spice::error::{Error, Result};

/// One parsed directive from a windows file.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowEdit {
    /// Constrain aggressor `agg` of net `net` to switch inside `window`.
    AggressorWindow {
        /// Victim net name (the cluster name).
        net: String,
        /// Aggressor index within the cluster.
        agg: usize,
        /// Allowed switching interval.
        window: SwitchingWindow,
    },
    /// Put aggressor `agg` of net `net` into mutual-exclusion group `group`.
    AggressorMexcl {
        /// Victim net name (the cluster name).
        net: String,
        /// Aggressor index within the cluster.
        agg: usize,
        /// Group id; at most one member of a group switches per candidate.
        group: u32,
    },
    /// Set the victim sensitivity window of net `net`.
    VictimSensitivity {
        /// Victim net name (the cluster name).
        net: String,
        /// Interval in which the receiver input is sampled.
        window: SwitchingWindow,
    },
}

fn parse_err(line: usize, message: impl Into<String>) -> Error {
    Error::Parse {
        line,
        message: message.into(),
    }
}

fn parse_time(line: usize, what: &str, raw: &str) -> Result<f64> {
    raw.parse::<f64>()
        .map_err(|_| parse_err(line, format!("bad {what} '{raw}' (expected seconds)")))
}

/// Parse the text of a windows file into edits.
///
/// # Errors
///
/// Returns [`Error::Parse`] with the 1-based line number on any malformed
/// directive.
pub fn parse_windows(text: &str) -> Result<Vec<WindowEdit>> {
    let mut edits = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let tok: Vec<&str> = content.split_whitespace().collect();
        let net = tok[0].to_string();
        if tok.len() >= 2 && tok[1] == "victim" {
            match tok.get(2) {
                Some(&"sensitivity") if tok.len() == 5 => {
                    let window = SwitchingWindow::new(
                        parse_time(line, "t_min", tok[3])?,
                        parse_time(line, "t_max", tok[4])?,
                    );
                    if !window.is_valid() {
                        return Err(parse_err(
                            line,
                            "sensitivity window must be finite and ordered",
                        ));
                    }
                    edits.push(WindowEdit::VictimSensitivity { net, window });
                }
                _ => {
                    return Err(parse_err(
                        line,
                        "expected '<net> victim sensitivity <t_min> <t_max>'",
                    ))
                }
            }
            continue;
        }
        if tok.len() < 3 {
            return Err(parse_err(
                line,
                "expected '<net> <agg-idx> window|mexcl ...' or '<net> victim sensitivity ...'",
            ));
        }
        let agg: usize = tok[1]
            .parse()
            .map_err(|_| parse_err(line, format!("bad aggressor index '{}'", tok[1])))?;
        match tok[2] {
            "window" => {
                if tok.len() != 5 {
                    return Err(parse_err(
                        line,
                        "expected '<net> <agg-idx> window <t_min> <t_max>'",
                    ));
                }
                let window = SwitchingWindow::new(
                    parse_time(line, "t_min", tok[3])?,
                    parse_time(line, "t_max", tok[4])?,
                );
                if !window.is_valid() {
                    return Err(parse_err(line, "window must be finite and ordered"));
                }
                edits.push(WindowEdit::AggressorWindow { net, agg, window });
            }
            "mexcl" => {
                if tok.len() != 4 {
                    return Err(parse_err(line, "expected '<net> <agg-idx> mexcl <group>'"));
                }
                let group: u32 = tok[3]
                    .parse()
                    .map_err(|_| parse_err(line, format!("bad mexcl group '{}'", tok[3])))?;
                edits.push(WindowEdit::AggressorMexcl { net, agg, group });
            }
            other => {
                return Err(parse_err(
                    line,
                    format!("unknown directive '{other}' (expected window or mexcl)"),
                ))
            }
        }
    }
    Ok(edits)
}

/// Read and parse a windows file from disk.
///
/// # Errors
///
/// I/O failures surface as [`Error::InvalidAnalysis`]; syntax errors as
/// [`Error::Parse`].
pub fn load_windows(path: &std::path::Path) -> Result<Vec<WindowEdit>> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        Error::InvalidAnalysis(format!(
            "cannot read windows file '{}': {e}",
            path.display()
        ))
    })?;
    parse_windows(&text)
}

/// Apply edits to a generated design, then re-validate every touched spec.
///
/// # Errors
///
/// Unknown nets and out-of-range aggressor indices are
/// [`Error::InvalidAnalysis`]; so are patched specs that fail
/// [`sna_core::cluster::ClusterSpec::validate`].
pub fn apply_windows(design: &mut Design, edits: &[WindowEdit]) -> Result<()> {
    let mut touched = Vec::new();
    for edit in edits {
        let net = match edit {
            WindowEdit::AggressorWindow { net, .. }
            | WindowEdit::AggressorMexcl { net, .. }
            | WindowEdit::VictimSensitivity { net, .. } => net,
        };
        let pos = design
            .clusters
            .iter()
            .position(|c| c.name == *net)
            .ok_or_else(|| {
                Error::InvalidAnalysis(format!("windows file names unknown net '{net}'"))
            })?;
        let spec = &mut design.clusters[pos].spec;
        let check_agg = |agg: usize, n: usize| -> Result<()> {
            if agg >= n {
                return Err(Error::InvalidAnalysis(format!(
                    "windows file: net '{net}' has {n} aggressors, index {agg} is out of range"
                )));
            }
            Ok(())
        };
        match edit {
            WindowEdit::AggressorWindow { agg, window, .. } => {
                check_agg(*agg, spec.aggressors.len())?;
                spec.aggressors[*agg].window = Some(*window);
            }
            WindowEdit::AggressorMexcl { agg, group, .. } => {
                check_agg(*agg, spec.aggressors.len())?;
                spec.aggressors[*agg].mexcl_group = Some(*group);
            }
            WindowEdit::VictimSensitivity { window, .. } => {
                spec.victim.sensitivity = Some(*window);
            }
        }
        if !touched.contains(&pos) {
            touched.push(pos);
        }
    }
    for pos in touched {
        design.clusters[pos].spec.validate()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_cells::Technology;

    const SAMPLE: &str = "\
# FRAME constraints for the smoke design
net000 0 window 1e-9 3e-9
net000 1 mexcl 2   # trailing comment
net001 victim sensitivity 0.5e-9 2e-9

net001 0 window 2e-9 2e-9
";

    #[test]
    fn sample_file_parses_to_edits() {
        let edits = parse_windows(SAMPLE).unwrap();
        assert_eq!(edits.len(), 4);
        assert_eq!(
            edits[0],
            WindowEdit::AggressorWindow {
                net: "net000".into(),
                agg: 0,
                window: SwitchingWindow::new(1e-9, 3e-9),
            }
        );
        assert_eq!(
            edits[1],
            WindowEdit::AggressorMexcl {
                net: "net000".into(),
                agg: 1,
                group: 2,
            }
        );
        assert!(matches!(edits[2], WindowEdit::VictimSensitivity { .. }));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("net0 0 window 1e-9", 1, "expected"),
            ("\nnet0 0 window 3e-9 1e-9", 2, "ordered"),
            ("net0 x window 1e-9 2e-9", 1, "aggressor index"),
            ("net0 0 wiggle 1 2", 1, "unknown directive"),
            ("net0 victim sense 1 2", 1, "victim sensitivity"),
            ("net0 0 mexcl -1", 1, "mexcl group"),
        ] {
            match parse_windows(text) {
                Err(Error::Parse { line: l, message }) => {
                    assert_eq!(l, line, "{text}");
                    assert!(message.contains(needle), "{text}: {message}");
                }
                other => panic!("{text}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn edits_apply_to_a_generated_design() {
        let tech = Technology::cmos130();
        let mut design = Design::random(&tech, 2, 7);
        let n_aggs = design.clusters[0].spec.aggressors.len();
        let edits = parse_windows(
            "net000 0 window 1e-9 3e-9\nnet000 0 mexcl 1\nnet001 victim sensitivity 0 1e-9\n",
        )
        .unwrap();
        apply_windows(&mut design, &edits).unwrap();
        assert!(n_aggs >= 1);
        let spec = &design.clusters[0].spec;
        assert_eq!(
            spec.aggressors[0].window,
            Some(SwitchingWindow::new(1e-9, 3e-9))
        );
        assert_eq!(spec.aggressors[0].mexcl_group, Some(1));
        assert!(spec.has_frame_constraints());
        assert_eq!(
            design.clusters[1].spec.victim.sensitivity,
            Some(SwitchingWindow::new(0.0, 1e-9))
        );

        // Unknown nets and bad indices are rejected with context.
        let bad = parse_windows("net999 0 window 0 1\n").unwrap();
        assert!(apply_windows(&mut design, &bad)
            .unwrap_err()
            .to_string()
            .contains("unknown net"));
        let bad = parse_windows(&format!("net000 {n_aggs} window 0 1\n")).unwrap();
        assert!(apply_windows(&mut design, &bad)
            .unwrap_err()
            .to_string()
            .contains("out of range"));
    }
}
