//! Deck-driven flow mode: `sna --deck <file>`.
//!
//! Instead of the synthetic cluster generator, this mode reads a real SPICE
//! deck through [`sna_spice::parser::parse_deck_file`] (subcircuits flattened,
//! models bound, controlled sources stamped) and runs one noise analysis per
//! `.sna` card — or per the `--victim`/`--aggressors` CLI fallback when the
//! deck carries no card.
//!
//! Each case runs a K=2 [`BatchedSweep`]: lane 0 is the deck as written, lane
//! 1 a clone with every aggressor source frozen at its `t = 0` value. The
//! victim-node difference between the lanes is the injected noise waveform;
//! [`GlitchMetrics`] of that difference against a zero baseline give
//! peak/width/area, and `margin = threshold − peak` drives the verdict.
//! Because both lanes share one factorization and one value plane, the noise
//! is exact to the last bit regardless of backend, and the per-case work is
//! embarrassingly parallel — reports are byte-identical across thread counts.

use std::path::Path;

use sna_core::sna::Verdict;
use sna_obs::Metric;
use sna_spice::backend::BackendKind;
use sna_spice::devices::SourceWaveform;
use sna_spice::error::{Error, Result};
use sna_spice::netlist::Element;
use sna_spice::parser::{parse_deck_file, ParsedDeck, SnaCard};
use sna_spice::solver::SolverKind;
use sna_spice::sweep::BatchedSweep;
use sna_spice::waveform::GlitchMetrics;

use crate::output::{esc, num, verdict_tag};
use crate::pool::parallel_map_ordered;

/// Knobs for deck mode, mirroring the subset of CLI flags that apply.
#[derive(Debug, Clone)]
pub struct DeckOptions {
    /// Fallback noise threshold (volts) for cards that carry none, and for
    /// the `--victim` CLI path. `None` means cards must set their own.
    pub threshold: Option<f64>,
    /// Victim node used when the deck has no `.sna` card.
    pub victim: Option<String>,
    /// Aggressor sources used when the deck has no `.sna` card.
    pub aggressors: Vec<String>,
    /// Margins below this band (volts) are warnings rather than passes.
    pub guard_band: f64,
    /// Fail the whole run on the first broken case instead of skipping it.
    pub strict: bool,
    /// Worker threads for the per-case fan-out.
    pub threads: usize,
    /// Linear-solver backend shared by both lanes.
    pub solver: SolverKind,
    /// Compute backend for the batched kernels.
    pub backend: BackendKind,
}

impl Default for DeckOptions {
    fn default() -> Self {
        DeckOptions {
            threshold: None,
            victim: None,
            aggressors: Vec::new(),
            guard_band: 0.1,
            strict: false,
            threads: 1,
            solver: SolverKind::Auto,
            backend: BackendKind::default(),
        }
    }
}

/// One analyzed `.sna` case.
#[derive(Debug, Clone)]
pub struct DeckFinding {
    /// Case name (`name=` on the card, else the victim node).
    pub name: String,
    /// Victim node as spelled in the deck.
    pub victim: String,
    /// Aggressor source names.
    pub aggressors: Vec<String>,
    /// Threshold the verdict was judged against (volts).
    pub threshold: f64,
    /// Glitch metrics of the noise waveform (baseline 0 V).
    pub metrics: GlitchMetrics,
    /// `threshold − peak`, volts; negative means failure.
    pub margin: f64,
    /// Pass / margin-warning / fail.
    pub verdict: Verdict,
}

/// A case that could not be analyzed (non-strict mode only).
#[derive(Debug, Clone)]
pub struct DeckSkipped {
    /// Case name.
    pub name: String,
    /// Human-readable reason.
    pub reason: String,
}

/// Everything `sna --deck` reports.
#[derive(Debug, Clone)]
pub struct DeckReport {
    /// Deck path (or label) as given.
    pub deck: String,
    /// Title line of the deck.
    pub title: String,
    /// Flattened node count (excluding ground).
    pub nodes: usize,
    /// Flattened element count.
    pub elements: usize,
    /// Guard band used for verdicts (volts).
    pub guard_band: f64,
    /// Analyzed cases, in deck order.
    pub findings: Vec<DeckFinding>,
    /// Cases skipped with their reasons, in deck order.
    pub skipped: Vec<DeckSkipped>,
}

impl DeckReport {
    /// Worst verdict across all findings (skips count as warnings).
    pub fn worst_verdict(&self) -> Verdict {
        let mut worst = Verdict::Pass;
        if !self.skipped.is_empty() {
            worst = Verdict::MarginWarning;
        }
        for f in &self.findings {
            worst = match (worst, f.verdict) {
                (_, Verdict::Fail) | (Verdict::Fail, _) => Verdict::Fail,
                (_, Verdict::MarginWarning) | (Verdict::MarginWarning, _) => Verdict::MarginWarning,
                _ => Verdict::Pass,
            };
        }
        worst
    }
}

fn case_name(card: &SnaCard) -> String {
    card.name.clone().unwrap_or_else(|| card.victim.clone())
}

fn analyze_case(parsed: &ParsedDeck, card: &SnaCard, opts: &DeckOptions) -> Result<DeckFinding> {
    let name = case_name(card);
    let circuit = &parsed.circuit;
    let victim = circuit.find_node(&card.victim).ok_or_else(|| {
        Error::InvalidAnalysis(format!(
            "case '{name}': unknown victim node '{}'",
            card.victim
        ))
    })?;
    let threshold = card.threshold.or(opts.threshold).ok_or_else(|| {
        Error::InvalidAnalysis(format!(
            "case '{name}': no threshold (set threshold= on the .sna card or pass --threshold)"
        ))
    })?;
    if !(threshold.is_finite() && threshold > 0.0) {
        return Err(Error::InvalidAnalysis(format!(
            "case '{name}': threshold must be finite and positive, got {threshold}"
        )));
    }
    let tran = parsed
        .tran
        .as_ref()
        .ok_or_else(|| Error::InvalidAnalysis("deck mode needs a .tran card".to_string()))?;

    // FRAME constraints: aggressors whose switching window cannot overlap
    // the victim sensitivity interval — or who lost their mutual-exclusion
    // slot to an earlier group member — cannot contribute noise, so they
    // are frozen in *both* lanes (the lane difference then excludes them).
    // Only sources in the card's aggressor list participate: a source
    // outside it switches identically in both lanes and cancels anyway.
    let mut pruned: Vec<String> = Vec::new();
    if !(card.windows.is_empty() && card.mexcl.is_empty()) {
        sna_obs::count(Metric::FrameClusters, 1);
        sna_obs::count(
            Metric::FrameCandidatesConsidered,
            card.aggressors.len() as u64,
        );
        let in_aggressors = |src: &str| card.aggressors.iter().any(|a| a.eq_ignore_ascii_case(src));
        if let Some((s_lo, s_hi)) = card.sensitivity {
            for (src, lo, hi) in &card.windows {
                if (*hi < s_lo || *lo > s_hi) && in_aggressors(src) {
                    pruned.push(src.clone());
                }
            }
        }
        sna_obs::count(Metric::FramePrunedWindow, pruned.len() as u64);
        // Within each mexcl group the first still-feasible member keeps
        // switching; the rest are frozen. (The per-candidate search over
        // group members is the synthetic-flow FRAME path; the deck path
        // runs one transient, so it picks the deterministic representative.)
        let mut claimed: Vec<u32> = Vec::new();
        let mut mexcl_pruned = 0u64;
        for (src, g) in &card.mexcl {
            if !in_aggressors(src) || pruned.iter().any(|p| p.eq_ignore_ascii_case(src)) {
                continue;
            }
            if claimed.contains(g) {
                pruned.push(src.clone());
                mexcl_pruned += 1;
            } else {
                claimed.push(*g);
            }
        }
        sna_obs::count(Metric::FramePrunedMexcl, mexcl_pruned);
        sna_obs::count(
            Metric::FrameSimulated,
            (card.aggressors.len() - pruned.len()) as u64,
        );
    }

    // Lane 1: aggressors frozen at their t = 0 value, so the lane difference
    // isolates the noise they inject.
    let mut quiet = circuit.clone();
    for aggr in &card.aggressors {
        let id = quiet.find_element(aggr).ok_or_else(|| {
            Error::InvalidAnalysis(format!("case '{name}': unknown aggressor source '{aggr}'"))
        })?;
        let v0 = match quiet.element(id) {
            Element::VSource { wave, .. } | Element::ISource { wave, .. } => wave.eval(0.0),
            _ => {
                return Err(Error::InvalidAnalysis(format!(
                    "case '{name}': aggressor '{aggr}' is not a V or I source"
                )))
            }
        };
        quiet.set_source_wave(aggr, SourceWaveform::Dc(v0))?;
    }

    // Lane 0: the pruned aggressors are frozen here too, removing their
    // contribution from the lane difference.
    let mut noisy = circuit.clone();
    for src in &pruned {
        let id = noisy.find_element(src).ok_or_else(|| {
            Error::InvalidAnalysis(format!("case '{name}': unknown constrained source '{src}'"))
        })?;
        let v0 = match noisy.element(id) {
            Element::VSource { wave, .. } | Element::ISource { wave, .. } => wave.eval(0.0),
            _ => {
                return Err(Error::InvalidAnalysis(format!(
                    "case '{name}': constrained source '{src}' is not a V or I source"
                )))
            }
        };
        noisy.set_source_wave(src, SourceWaveform::Dc(v0))?;
    }

    let lanes = [noisy, quiet];
    let mut sweep = BatchedSweep::new(&lanes, opts.solver, opts.backend)?;
    let mut params = *tran;
    params.solver = opts.solver;
    let ics = parsed.resolve_ics();
    let results = sweep.transient_with_ics(&lanes, &params, &ics)?;
    let noisy = results[0].node_waveform(victim);
    let still = results[1].node_waveform(victim);
    let noise = noisy.sub(&still);
    let metrics = GlitchMetrics::from_waveform(&noise, 0.0);
    let margin = threshold - metrics.peak;
    let verdict = if margin < 0.0 {
        Verdict::Fail
    } else if margin < opts.guard_band {
        Verdict::MarginWarning
    } else {
        Verdict::Pass
    };
    Ok(DeckFinding {
        name,
        victim: card.victim.clone(),
        aggressors: card.aggressors.clone(),
        threshold,
        metrics,
        margin,
        verdict,
    })
}

/// Run every `.sna` case of an already-parsed deck. `label` names the deck in
/// the report (the file path in CLI use).
///
/// # Errors
///
/// Fails when the deck has no `.tran` card, no `.sna` card and no CLI victim,
/// or (in strict mode) when any case is broken. Non-strict broken cases are
/// downgraded to [`DeckReport::skipped`].
pub fn run_deck(parsed: &ParsedDeck, label: &str, opts: &DeckOptions) -> Result<DeckReport> {
    if parsed.tran.is_none() {
        return Err(Error::InvalidAnalysis(
            "deck mode needs a .tran card".to_string(),
        ));
    }
    let mut cases = parsed.sna_cards.clone();
    if cases.is_empty() {
        let victim = opts.victim.clone().ok_or_else(|| {
            Error::InvalidAnalysis(
                "deck has no .sna card; pass --victim <node> (and optionally --aggressors)"
                    .to_string(),
            )
        })?;
        cases.push(SnaCard {
            name: None,
            victim,
            aggressors: opts.aggressors.clone(),
            threshold: None,
            windows: Vec::new(),
            mexcl: Vec::new(),
            sensitivity: None,
        });
    }
    let outcomes = parallel_map_ordered(opts.threads, &cases, |_, card| {
        analyze_case(parsed, card, opts)
    });
    let mut findings = Vec::new();
    let mut skipped = Vec::new();
    for (card, outcome) in cases.iter().zip(outcomes) {
        match outcome {
            Ok(f) => findings.push(f),
            Err(e) if opts.strict => return Err(e),
            Err(e) => skipped.push(DeckSkipped {
                name: case_name(card),
                reason: e.to_string(),
            }),
        }
    }
    Ok(DeckReport {
        deck: label.to_string(),
        title: parsed.title.clone(),
        nodes: parsed.circuit.node_count(),
        elements: parsed.circuit.element_count(),
        guard_band: opts.guard_band,
        findings,
        skipped,
    })
}

/// Parse `path` (expanding `.include`s) and run every `.sna` case.
///
/// # Errors
///
/// As [`run_deck`], plus parse and I/O errors from the deck itself.
pub fn run_deck_file(path: &Path, opts: &DeckOptions) -> Result<DeckReport> {
    let parsed = parse_deck_file(path)?;
    run_deck(&parsed, &path.display().to_string(), opts)
}

/// Human-readable deck report.
pub fn deck_to_text(report: &DeckReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("deck: {} ({})\n", report.deck, report.title));
    out.push_str(&format!(
        "flattened: {} nodes, {} elements\n",
        report.nodes, report.elements
    ));
    let (mut pass, mut warn, mut fail) = (0usize, 0usize, 0usize);
    for f in &report.findings {
        match f.verdict {
            Verdict::Pass => pass += 1,
            Verdict::MarginWarning => warn += 1,
            Verdict::Fail => fail += 1,
        }
        out.push_str(&format!(
            "case {}: victim={} aggressors=[{}] peak={} V width={} s margin={} V [{}]\n",
            f.name,
            f.victim,
            f.aggressors.join(","),
            num(f.metrics.peak),
            num(f.metrics.width),
            num(f.margin),
            verdict_tag(f.verdict).to_uppercase(),
        ));
    }
    for s in &report.skipped {
        out.push_str(&format!("case {}: SKIPPED ({})\n", s.name, s.reason));
    }
    out.push_str(&format!(
        "summary: {pass} pass, {warn} warn, {fail} fail, {} skipped\n",
        report.skipped.len()
    ));
    out
}

/// Machine-readable deck report (`sna-deck-report-v1`). Deterministic: no
/// timestamps, no thread counts, shortest-round-trip floats.
pub fn deck_to_json(report: &DeckReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"sna-deck-report-v1\",\n");
    out.push_str(&format!("  \"deck\": \"{}\",\n", esc(&report.deck)));
    out.push_str(&format!("  \"title\": \"{}\",\n", esc(&report.title)));
    out.push_str(&format!("  \"nodes\": {},\n", report.nodes));
    out.push_str(&format!("  \"elements\": {},\n", report.elements));
    out.push_str(&format!(
        "  \"guard_band_v\": {},\n",
        num(report.guard_band)
    ));
    out.push_str(&format!(
        "  \"worst_verdict\": \"{}\",\n",
        verdict_tag(report.worst_verdict())
    ));
    out.push_str("  \"cases\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"name\": \"{}\", ", esc(&f.name)));
        out.push_str(&format!("\"victim\": \"{}\", ", esc(&f.victim)));
        out.push_str("\"aggressors\": [");
        for (j, a) in f.aggressors.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", esc(a)));
        }
        out.push_str("], ");
        out.push_str(&format!("\"threshold_v\": {}, ", num(f.threshold)));
        out.push_str(&format!("\"peak_v\": {}, ", num(f.metrics.peak)));
        out.push_str(&format!("\"polarity\": {}, ", num(f.metrics.polarity)));
        out.push_str(&format!("\"peak_time_s\": {}, ", num(f.metrics.peak_time)));
        out.push_str(&format!("\"width_s\": {}, ", num(f.metrics.width)));
        out.push_str(&format!("\"area_vs\": {}, ", num(f.metrics.area)));
        out.push_str(&format!("\"margin_v\": {}, ", num(f.margin)));
        out.push_str(&format!("\"verdict\": \"{}\"}}", verdict_tag(f.verdict)));
    }
    if report.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"skipped\": [");
    for (i, s) in report.skipped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"reason\": \"{}\"}}",
            esc(&s.name),
            esc(&s.reason)
        ));
    }
    if report.skipped.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// CSV deck report: one row per case, skips flagged in the verdict column.
pub fn deck_to_csv(report: &DeckReport) -> String {
    let mut out = String::from(
        "case,victim,aggressors,threshold_v,peak_v,polarity,peak_time_s,width_s,area_vs,margin_v,verdict\n",
    );
    for f in &report.findings {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            f.name,
            f.victim,
            f.aggressors.join(";"),
            num(f.threshold),
            num(f.metrics.peak),
            num(f.metrics.polarity),
            num(f.metrics.peak_time),
            num(f.metrics.width),
            num(f.metrics.area),
            num(f.margin),
            verdict_tag(f.verdict),
        ));
    }
    for s in &report.skipped {
        out.push_str(&format!("{},,,,,,,,,,skipped\n", s.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_spice::parser::parse_deck;

    const COUPLED: &str = "\
* coupled pair
Va agg 0 PULSE(0 1.2 1n 0.2n 0.2n 2n)
Ra agg vic_in 1k
Cc agg vic 20f
Rv vic 0 2k
Cv vic 0 30f
Rb vic_in 0 1k
.tran 0.05n 6n
.sna victim=vic aggressors=Va threshold=0.4 name=pair
";

    fn opts() -> DeckOptions {
        DeckOptions {
            threshold: Some(0.4),
            ..DeckOptions::default()
        }
    }

    #[test]
    fn deck_with_sna_card_runs() {
        let parsed = parse_deck(COUPLED).unwrap();
        let report = run_deck(&parsed, "mem", &opts()).unwrap();
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.name, "pair");
        assert!(f.metrics.peak > 1e-3, "peak={}", f.metrics.peak);
        assert!(f.metrics.peak < 0.4, "peak={}", f.metrics.peak);
        assert!(report.skipped.is_empty());
    }

    #[test]
    fn cli_victim_fallback_and_missing_victim() {
        let deck = COUPLED.replace(".sna victim=vic aggressors=Va threshold=0.4 name=pair", "");
        let parsed = parse_deck(&deck).unwrap();
        assert!(run_deck(&parsed, "mem", &opts()).is_err());
        let mut o = opts();
        o.victim = Some("vic".to_string());
        o.aggressors = vec!["Va".to_string()];
        let report = run_deck(&parsed, "mem", &o).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].name, "vic");
    }

    #[test]
    fn no_aggressors_means_zero_noise() {
        let parsed = parse_deck(COUPLED).unwrap();
        let mut o = opts();
        o.victim = Some("vic".to_string());
        let deck = COUPLED.replace(".sna victim=vic aggressors=Va threshold=0.4 name=pair", "");
        let parsed2 = parse_deck(&deck).unwrap();
        let report = run_deck(&parsed2, "mem", &o).unwrap();
        assert_eq!(report.findings[0].metrics.peak, 0.0);
        assert_eq!(report.findings[0].verdict, Verdict::Pass);
        drop(parsed);
    }

    #[test]
    fn infeasible_window_freezes_the_aggressor() {
        // Window entirely after the sensitivity interval: Va cannot hit
        // the receiver, so its noise contribution must vanish.
        let deck = COUPLED.replace(
            ".sna victim=vic aggressors=Va threshold=0.4 name=pair",
            ".sna victim=vic aggressors=Va threshold=0.4 name=pair \
             window=Va:4n:5n sensitivity=0:1n",
        );
        let parsed = parse_deck(&deck).unwrap();
        let report = run_deck(&parsed, "mem", &opts()).unwrap();
        assert_eq!(report.findings[0].metrics.peak, 0.0);
        assert_eq!(report.findings[0].verdict, Verdict::Pass);

        // A feasible window changes nothing: byte-identical to the
        // unconstrained run.
        let feasible = COUPLED.replace(
            ".sna victim=vic aggressors=Va threshold=0.4 name=pair",
            ".sna victim=vic aggressors=Va threshold=0.4 name=pair \
             window=Va:0:2n sensitivity=0:8n",
        );
        let parsed_f = parse_deck(&feasible).unwrap();
        let constrained = run_deck(&parsed_f, "mem", &opts()).unwrap();
        let baseline = run_deck(&parse_deck(COUPLED).unwrap(), "mem", &opts()).unwrap();
        assert_eq!(
            constrained.findings[0].metrics.peak.to_bits(),
            baseline.findings[0].metrics.peak.to_bits(),
        );
        assert_eq!(constrained.findings[0].margin, baseline.findings[0].margin);
    }

    #[test]
    fn mexcl_keeps_one_group_member_switching() {
        // Two identical aggressors in one mexcl group: the second is
        // frozen, so the noise equals the single-aggressor run.
        let two = COUPLED.replace(
            "Va agg 0 PULSE(0 1.2 1n 0.2n 0.2n 2n)",
            "Va agg 0 PULSE(0 1.2 1n 0.2n 0.2n 2n)\nVb agg2 0 PULSE(0 1.2 1n 0.2n 0.2n 2n)\nCc2 agg2 vic 20f\nRa2 agg2 0 1k",
        );
        let both = two.replace("aggressors=Va", "aggressors=Va,Vb");
        let gated = two.replace("aggressors=Va", "aggressors=Va,Vb mexcl=Va:1,Vb:1");
        // Reference: the same circuit with Vb held at DC 0 at the source —
        // exactly what the mexcl freeze does (PULSE value at t = 0 is 0).
        let frozen = both.replace("Vb agg2 0 PULSE(0 1.2 1n 0.2n 0.2n 2n)", "Vb agg2 0 DC 0");
        let both_r = run_deck(&parse_deck(&both).unwrap(), "mem", &opts()).unwrap();
        let gated_r = run_deck(&parse_deck(&gated).unwrap(), "mem", &opts()).unwrap();
        let frozen_r = run_deck(&parse_deck(&frozen).unwrap(), "mem", &opts()).unwrap();
        // Both aggressors together inject more than the gated pair.
        assert!(both_r.findings[0].metrics.peak > gated_r.findings[0].metrics.peak * 1.5);
        // The mexcl gate freezes exactly the second group member: bitwise
        // the same lanes as the source-level freeze.
        assert_eq!(
            gated_r.findings[0].metrics.peak.to_bits(),
            frozen_r.findings[0].metrics.peak.to_bits(),
        );
    }

    #[test]
    fn strict_vs_skip_on_broken_case() {
        let deck = COUPLED.replace("aggressors=Va", "aggressors=Va,Vmissing");
        // The parser itself verifies .sna aggressors, so inject the broken
        // case through the CLI fallback path instead.
        let clean = deck.replace(
            ".sna victim=vic aggressors=Va,Vmissing threshold=0.4 name=pair",
            "",
        );
        let parsed = parse_deck(&clean).unwrap();
        let mut o = opts();
        o.victim = Some("vic".to_string());
        o.aggressors = vec!["Va".to_string(), "Vmissing".to_string()];
        let report = run_deck(&parsed, "mem", &o).unwrap();
        assert!(report.findings.is_empty());
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].reason.contains("Vmissing"));
        o.strict = true;
        assert!(run_deck(&parsed, "mem", &o).is_err());
    }

    #[test]
    fn report_bytes_identical_across_threads() {
        let parsed = parse_deck(COUPLED).unwrap();
        let mut o1 = opts();
        o1.threads = 1;
        let mut o4 = opts();
        o4.threads = 4;
        let r1 = run_deck(&parsed, "mem", &o1).unwrap();
        let r4 = run_deck(&parsed, "mem", &o4).unwrap();
        assert_eq!(deck_to_json(&r1), deck_to_json(&r4));
        assert_eq!(deck_to_text(&r1), deck_to_text(&r4));
        assert_eq!(deck_to_csv(&r1), deck_to_csv(&r4));
    }

    #[test]
    fn missing_tran_is_an_error() {
        let deck = COUPLED.replace(".tran 0.05n 6n\n", "");
        let parsed = parse_deck(&deck).unwrap();
        let err = run_deck(&parsed, "mem", &opts()).unwrap_err();
        assert!(err.to_string().contains(".tran"));
    }

    #[test]
    fn verdict_thresholds() {
        let parsed = parse_deck(COUPLED).unwrap();
        let mut o = opts();
        let base = run_deck(&parsed, "mem", &o).unwrap();
        let peak = base.findings[0].metrics.peak;
        // Threshold just above the peak but inside the guard band: warn.
        let mut warn_deck = parse_deck(COUPLED).unwrap();
        warn_deck.sna_cards[0].threshold = Some(peak + 0.01);
        o.guard_band = 0.05;
        let r = run_deck(&warn_deck, "mem", &o).unwrap();
        assert_eq!(r.findings[0].verdict, Verdict::MarginWarning);
        // Threshold below the peak: fail.
        let mut fail_deck = parse_deck(COUPLED).unwrap();
        fail_deck.sna_cards[0].threshold = Some(peak * 0.5);
        let r = run_deck(&fail_deck, "mem", &o).unwrap();
        assert_eq!(r.findings[0].verdict, Verdict::Fail);
        assert_eq!(r.worst_verdict(), Verdict::Fail);
    }
}
