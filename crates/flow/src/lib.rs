//! # sna-flow — parallel full-chip static noise analysis
//!
//! The paper's closing future work is "a complete methodology for static
//! noise analysis based on our macromodel"; `sna-core` supplies the
//! per-cluster methodology, and this crate scales it to designs: a
//! hand-rolled order-preserving worker pool ([`pool`]), a design-level
//! driver sharing one synchronized characterization cache across workers
//! ([`driver`]), multi-corner sweeps ([`corners`]), report serializers
//! ([`output`]), and the `sna` command-line binary ([`cli`]).
//!
//! The central contract is **determinism**: a run at `--threads N` emits a
//! report byte-identical to `--threads 1`. Scheduling only changes *when*
//! a cluster is analyzed, never *what* its analysis sees — the shared
//! cache memoizes pure functions, and the merge is in design order.

#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod corners;
pub mod deck;
pub mod driver;
pub mod metrics;
pub mod output;
pub mod pool;
pub mod serve;
pub mod windows;

pub use cache::{load_library_cache, save_library_cache, CacheLoad};
pub use corners::{
    corner_by_name, run_corners, run_corners_windowed, run_corners_with, CornerReport,
};
pub use driver::{run_sna_parallel, run_sna_parallel_with, FlowOptions, FlowReport};
pub use metrics::metrics_to_json;
pub use pool::{auto_threads, parallel_map_ordered, parallel_map_ordered_metered, PoolMetrics};
pub use serve::{run_serve, ServeState};
pub use windows::{apply_windows, load_windows, parse_windows, WindowEdit};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cache::{load_library_cache, save_library_cache, CacheLoad};
    pub use crate::cli::{parse_args, CliConfig, Format, LogLevel};
    pub use crate::corners::{
        corner_by_name, run_corners, run_corners_windowed, run_corners_with, CornerReport,
    };
    pub use crate::deck::{
        deck_to_csv, deck_to_json, deck_to_text, run_deck, run_deck_file, DeckFinding, DeckOptions,
        DeckReport, DeckSkipped,
    };
    pub use crate::driver::{run_sna_parallel, run_sna_parallel_with, FlowOptions, FlowReport};
    pub use crate::metrics::metrics_to_json;
    pub use crate::output::{to_csv, to_json, to_text, RunSummary};
    pub use crate::pool::{auto_threads, parallel_map_ordered, parallel_map_ordered_metered};
    pub use crate::serve::{run_serve, ServeState};
    pub use crate::windows::{apply_windows, load_windows, parse_windows, WindowEdit};
}
