//! Hand-rolled report serializers.
//!
//! The vendored `serde` derive is a no-op shim (the build image has no
//! registry access), so the CLI writes its JSON and CSV explicitly. Both
//! formats are pure functions of the [`NoiseReport`] contents — cache
//! statistics and wall-clock timings deliberately stay out, so the bytes
//! are identical across thread counts and the determinism guarantee can be
//! checked with `diff`.

use sna_core::sna::{NoiseReport, Verdict};

use crate::corners::CornerReport;

/// Run-level metadata carried into the serialized report.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Clusters per corner.
    pub clusters: usize,
    /// Design-generator seed.
    pub seed: u64,
    /// Whether the worst-case alignment search ran.
    pub align_worst_case: bool,
    /// NRC guard band (V).
    pub margin_band: f64,
    /// Per-corner results.
    pub corners: Vec<CornerReport>,
}

/// JSON string escaping per RFC 8259 (quotes, backslashes, control chars).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON value: shortest round-trip form, `null` for the
/// non-finite values JSON cannot carry.
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

pub(crate) fn verdict_tag(v: Verdict) -> &'static str {
    match v {
        Verdict::Pass => "pass",
        Verdict::MarginWarning => "warn",
        Verdict::Fail => "fail",
    }
}

fn json_findings(report: &NoiseReport, indent: &str) -> String {
    let mut rows = Vec::with_capacity(report.findings.len());
    for f in &report.findings {
        // Constrained (FRAME) fields ride along only when the cluster
        // carries constraints; unconstrained nets keep a stable `null`.
        let constrained = match &f.constrained {
            Some(c) => format!(
                "{}, \"frame\": {{\"considered\": {}, \"pruned_window\": {}, \
                 \"pruned_mexcl\": {}, \"simulated\": {}}}",
                num(c.margin),
                c.counters.considered,
                c.counters.pruned_window,
                c.counters.pruned_mexcl,
                c.counters.simulated,
            ),
            None => "null".into(),
        };
        rows.push(format!(
            "{indent}{{\"net\": \"{}\", \"verdict\": \"{}\", \"peak_v\": {}, \"width_s\": {}, \
             \"area_vs\": {}, \"margin_v\": {}, \"constrained_margin_v\": {}}}",
            esc(&f.name),
            verdict_tag(f.verdict),
            num(f.receiver_metrics.peak),
            num(f.receiver_metrics.width),
            num(f.receiver_metrics.area),
            num(f.margin),
            constrained,
        ));
    }
    rows.join(",\n")
}

fn json_skipped(report: &NoiseReport, indent: &str) -> String {
    let mut rows = Vec::with_capacity(report.skipped.len());
    for s in &report.skipped {
        rows.push(format!(
            "{indent}{{\"net\": \"{}\", \"reason\": \"{}\"}}",
            esc(&s.name),
            esc(&s.reason)
        ));
    }
    rows.join(",\n")
}

/// The full run as a JSON document (`sna-report-v1` schema).
pub fn to_json(run: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sna-report-v1\",\n");
    out.push_str(&format!("  \"clusters\": {},\n", run.clusters));
    out.push_str(&format!("  \"seed\": {},\n", run.seed));
    out.push_str(&format!(
        "  \"align_worst_case\": {},\n",
        run.align_worst_case
    ));
    out.push_str(&format!("  \"margin_band_v\": {},\n", num(run.margin_band)));
    out.push_str("  \"corners\": [\n");
    let corners: Vec<String> = run
        .corners
        .iter()
        .map(|c| {
            let r = &c.flow.report;
            let mut s = String::new();
            s.push_str("    {\n");
            s.push_str(&format!("      \"tech\": \"{}\",\n", esc(&c.tech)));
            s.push_str(&format!("      \"pass\": {},\n", r.count(Verdict::Pass)));
            s.push_str(&format!(
                "      \"warn\": {},\n",
                r.count(Verdict::MarginWarning)
            ));
            s.push_str(&format!("      \"fail\": {},\n", r.count(Verdict::Fail)));
            s.push_str(&format!("      \"skipped\": {},\n", r.skipped.len()));
            if r.findings.is_empty() {
                s.push_str("      \"findings\": [],\n");
            } else {
                s.push_str("      \"findings\": [\n");
                s.push_str(&json_findings(r, "        "));
                s.push_str("\n      ],\n");
            }
            if r.skipped.is_empty() {
                s.push_str("      \"skipped_nets\": []\n");
            } else {
                s.push_str("      \"skipped_nets\": [\n");
                s.push_str(&json_skipped(r, "        "));
                s.push_str("\n      ]\n");
            }
            s.push_str("    }");
            s
        })
        .collect();
    out.push_str(&corners.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// A string as a CSV field: quoted (with doubled inner quotes) only when
/// it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A float as a CSV numeric field: empty when non-finite, matching the
/// skipped-row convention for missing values (JSON uses `null` instead).
fn csv_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new()
    }
}

/// The full run as CSV, one row per net per corner; skipped nets carry the
/// `skipped` verdict, empty numeric columns, and their diagnostic in the
/// trailing `reason` column (empty for analyzed nets).
pub fn to_csv(run: &RunSummary) -> String {
    let mut out = String::from(
        "corner,net,verdict,peak_v,width_s,area_vs,margin_v,constrained_margin_v,reason\n",
    );
    for c in &run.corners {
        for f in &c.flow.report.findings {
            let constrained = f
                .constrained
                .as_ref()
                .map_or(String::new(), |c| csv_num(c.margin));
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},\n",
                csv_field(&c.tech),
                csv_field(&f.name),
                verdict_tag(f.verdict),
                csv_num(f.receiver_metrics.peak),
                csv_num(f.receiver_metrics.width),
                csv_num(f.receiver_metrics.area),
                csv_num(f.margin),
                constrained,
            ));
        }
        for s in &c.flow.report.skipped {
            out.push_str(&format!(
                "{},{},skipped,,,,,,{}\n",
                csv_field(&c.tech),
                csv_field(&s.name),
                csv_field(&s.reason)
            ));
        }
    }
    out
}

/// A human-readable summary table (the default CLI format).
pub fn to_text(run: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sna: {} clusters/corner, seed {}, alignment {}, guard band {:.3} V\n",
        run.clusters,
        run.seed,
        if run.align_worst_case {
            "worst-case"
        } else {
            "nominal"
        },
        run.margin_band,
    ));
    for c in &run.corners {
        let r = &c.flow.report;
        out.push_str(&format!(
            "\n[{}] {} pass / {} warn / {} fail / {} skipped\n",
            c.tech,
            r.count(Verdict::Pass),
            r.count(Verdict::MarginWarning),
            r.count(Verdict::Fail),
            r.skipped.len(),
        ));
        out.push_str(&format!(
            "{:<8} {:>9} {:>10} {:>10} {:>10}  verdict\n",
            "net", "peak (V)", "width(ps)", "margin(V)", "constr(V)"
        ));
        for f in r.worst_first() {
            let constrained = match &f.constrained {
                Some(c) => format!("{:>+10.3}", c.margin),
                None => format!("{:>10}", "-"),
            };
            out.push_str(&format!(
                "{:<8} {:>9.3} {:>10.0} {:>+10.3} {}  {}\n",
                f.name,
                f.receiver_metrics.peak,
                f.receiver_metrics.width * 1e12,
                f.margin,
                constrained,
                verdict_tag(f.verdict),
            ));
        }
        for s in &r.skipped {
            out.push_str(&format!("{:<8} skipped: {}\n", s.name, s.reason));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{FlowOptions, FlowReport};
    use sna_core::library::LibraryStats;
    use sna_core::sna::{ClusterFinding, SkippedCluster};
    use sna_spice::waveform::GlitchMetrics;

    fn sample_run() -> RunSummary {
        let finding = ClusterFinding {
            name: "net000".into(),
            receiver_metrics: GlitchMetrics {
                peak: 0.25,
                polarity: 1.0,
                peak_time: 1e-9,
                width: 3e-10,
                area: 5e-11,
            },
            margin: 0.375,
            verdict: Verdict::Pass,
            constrained: None,
        };
        let report = NoiseReport {
            findings: vec![finding],
            skipped: vec![SkippedCluster {
                name: "net001".into(),
                reason: "tran analysis failed, t = 1e-9".into(),
            }],
        };
        RunSummary {
            clusters: 2,
            seed: 7,
            align_worst_case: false,
            margin_band: 0.1,
            corners: vec![CornerReport {
                tech: "cmos130".into(),
                flow: FlowReport {
                    report,
                    cache: LibraryStats::default(),
                    threads: 2,
                    pool: crate::pool::PoolMetrics::default(),
                    cluster_wall_nanos: Vec::new(),
                },
            }],
        }
    }

    // FlowOptions is in this crate's public API; silence the unused-import
    // lint chain by referencing it once.
    #[test]
    fn flow_options_default_is_auto_threaded() {
        assert_eq!(FlowOptions::default().threads, 0);
    }

    #[test]
    fn json_contains_schema_counts_and_nets() {
        let j = to_json(&sample_run());
        assert!(j.contains("\"schema\": \"sna-report-v1\""));
        assert!(j.contains("\"tech\": \"cmos130\""));
        assert!(j.contains("\"net\": \"net000\""));
        assert!(j.contains("\"pass\": 1"));
        assert!(j.contains("\"skipped\": 1"));
        assert!(j.contains("\"margin_v\": 0.375"));
        // Unconstrained nets keep a stable null so consumers can rely on
        // the key being present.
        assert!(j.contains("\"constrained_margin_v\": null"));
        // Balanced braces/brackets — cheap well-formedness check given no
        // JSON parser in the tree.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escapes_and_nan_are_legal() {
        let mut run = sample_run();
        run.corners[0].flow.report.skipped[0].reason = "quote \" backslash \\ tab\t".into();
        run.corners[0].flow.report.findings[0].margin = f64::NAN;
        let j = to_json(&run);
        assert!(j.contains("quote \\\" backslash \\\\ tab\\t"));
        assert!(j.contains("\"margin_v\": null"));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_net() {
        let c = to_csv(&sample_run());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(
            lines[0],
            "corner,net,verdict,peak_v,width_s,area_vs,margin_v,constrained_margin_v,reason"
        );
        assert_eq!(lines.len(), 3); // header + 1 finding + 1 skipped
        assert!(lines[1].starts_with("cmos130,net000,pass,0.25,"));
        assert!(
            lines[1].ends_with(","),
            "analyzed nets have an empty reason"
        );
        assert!(lines[2].starts_with("cmos130,net001,skipped,,,,,,"));
        // Every row has the same column count (the skipped reason keeps
        // numeric columns empty rather than displacing them). Delimiters
        // inside quoted fields don't count.
        let delimiters = |row: &str| {
            let mut in_quotes = false;
            row.chars()
                .filter(|&c| {
                    if c == '"' {
                        in_quotes = !in_quotes;
                    }
                    c == ',' && !in_quotes
                })
                .count()
        };
        for l in &lines {
            assert_eq!(delimiters(l), 8, "row: {l}");
        }
    }

    #[test]
    fn csv_quotes_fields_with_delimiters() {
        let mut run = sample_run();
        run.corners[0].flow.report.findings[0].name = "net,weird".into();
        run.corners[0].flow.report.skipped[0].reason = "failed, badly \"twice\"".into();
        let c = to_csv(&run);
        assert!(c.contains("cmos130,\"net,weird\",pass,"));
        assert!(c.contains(",\"failed, badly \"\"twice\"\"\"\n"));
    }

    #[test]
    fn csv_nonfinite_numerics_are_empty_fields() {
        let mut run = sample_run();
        run.corners[0].flow.report.findings[0].margin = f64::NAN;
        let c = to_csv(&run);
        // ...,area,<empty margin>,<empty reason>
        assert!(
            c.contains(",,\n"),
            "NaN margin must serialize as empty:\n{c}"
        );
        assert!(!c.contains("null") && !c.contains("NaN"));
    }

    #[test]
    fn constrained_findings_surface_in_all_formats() {
        use sna_core::frame::{FrameCounters, FrameOutcome};
        let mut run = sample_run();
        run.corners[0].flow.report.findings[0].constrained = Some(FrameOutcome {
            margin: 0.5,
            receiver_metrics: GlitchMetrics {
                peak: 0.125,
                polarity: 1.0,
                peak_time: 1e-9,
                width: 2e-10,
                area: 2.5e-11,
            },
            switch_times: vec![1e-9],
            switching: vec![true],
            counters: FrameCounters {
                considered: 9,
                pruned_window: 4,
                pruned_mexcl: 2,
                simulated: 3,
            },
        });
        let j = to_json(&run);
        assert!(j.contains("\"constrained_margin_v\": 0.5"));
        assert!(j.contains("\"frame\": {\"considered\": 9, \"pruned_window\": 4, "));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let c = to_csv(&run);
        assert!(
            c.contains(",0.375,0.5,\n"),
            "csv carries both margins:\n{c}"
        );
        let t = to_text(&run);
        assert!(
            t.contains("+0.500"),
            "text shows the constrained margin:\n{t}"
        );
    }

    #[test]
    fn text_mentions_worst_first_ordering() {
        let t = to_text(&sample_run());
        assert!(t.contains("1 pass / 0 warn / 0 fail / 1 skipped"));
        assert!(t.contains("net000"));
        assert!(t.contains("skipped: tran analysis failed"));
    }
}
