//! Multi-corner sweeps.
//!
//! Sign-off runs the same netlist at every characterized process corner;
//! here a "corner" is a [`Technology`] node (the repo ships 0.13 µm and
//! 90 nm decks). Each corner gets its own synthetic design realization
//! (same cluster count and seed, so corner deltas are apples-to-apples),
//! its own receiver NRC, and its own parallel flow run.

use sna_cells::{Cell, Technology};
use sna_core::library::{LibraryStats, NoiseModelLibrary};
use sna_core::sna::Design;
use sna_obs::{phase_span, trace_span, Phase};
use sna_spice::error::{Error, Result};
use sna_spice::units::PS;

use crate::driver::{run_sna_parallel_with, FlowOptions, FlowReport};

/// The flow result at one process corner.
#[derive(Debug, Clone)]
pub struct CornerReport {
    /// Technology-node name (e.g. `cmos130`).
    pub tech: String,
    /// The flow report at this corner.
    pub flow: FlowReport,
}

/// Resolve a corner name to its technology deck.
///
/// # Errors
///
/// Fails on unknown names; the valid set is `cmos130` and `cmos90`.
pub fn corner_by_name(name: &str) -> Result<Technology> {
    match name {
        "cmos130" => Ok(Technology::cmos130()),
        "cmos90" => Ok(Technology::cmos90()),
        other => Err(Error::InvalidAnalysis(format!(
            "unknown corner '{other}' (expected cmos130 or cmos90)"
        ))),
    }
}

/// Standard receiver-NRC width grid (s) used by the CLI flow.
pub const NRC_WIDTHS: [f64; 5] = [100.0 * PS, 200.0 * PS, 400.0 * PS, 800.0 * PS, 1600.0 * PS];

/// Run the flow on an `n_clusters`-net random design at every corner.
///
/// # Errors
///
/// Propagates NRC characterization failures and (in strict mode)
/// per-cluster failures.
pub fn run_corners(
    corners: &[Technology],
    n_clusters: usize,
    seed: u64,
    opts: &FlowOptions,
) -> Result<Vec<CornerReport>> {
    run_corners_with(corners, n_clusters, seed, opts, &NoiseModelLibrary::new())
}

/// [`run_corners`] against a caller-supplied characterization library —
/// the entry point of the persistent-cache flow (`--library-cache`) and
/// of `sna serve`.
///
/// One library safely serves every corner: artifact keys fingerprint the
/// full [`Technology`], so corners can never alias. Each corner's
/// [`FlowReport::cache`] is the counter *delta* it added (the NRC sweep
/// plus its flow), not the library's cumulative totals, so metrics
/// aggregation across corners — and across `serve` queries — stays exact.
///
/// # Errors
///
/// Propagates NRC characterization failures and (in strict mode)
/// per-cluster failures.
pub fn run_corners_with(
    corners: &[Technology],
    n_clusters: usize,
    seed: u64,
    opts: &FlowOptions,
    library: &NoiseModelLibrary,
) -> Result<Vec<CornerReport>> {
    run_corners_windowed(corners, n_clusters, seed, opts, library, &[])
}

/// [`run_corners_with`] plus FRAME constraint edits (`--windows`): each
/// corner's design is generated, patched with the switching-window /
/// mutual-exclusion edits, and re-validated before analysis. An empty edit
/// slice reproduces [`run_corners_with`] exactly.
///
/// # Errors
///
/// Propagates constraint-application failures (unknown nets, invalid
/// windows) in addition to the [`run_corners_with`] failure modes.
pub fn run_corners_windowed(
    corners: &[Technology],
    n_clusters: usize,
    seed: u64,
    opts: &FlowOptions,
    library: &NoiseModelLibrary,
    windows: &[crate::windows::WindowEdit],
) -> Result<Vec<CornerReport>> {
    let mut out = Vec::with_capacity(corners.len());
    for tech in corners {
        let _t = phase_span(Phase::Corner);
        let _tr = trace_span("corner", &tech.name);
        let mut design = Design::random(tech, n_clusters, seed);
        if !windows.is_empty() {
            crate::windows::apply_windows(&mut design, windows)?;
        }
        let before = library.stats();
        let nrc = library.nrc(
            &Cell::inv(tech.clone(), 1.0),
            true,
            &NRC_WIDTHS,
            opts.mm.solver,
        )?;
        let mut flow = run_sna_parallel_with(&design, &nrc, opts, library)?;
        flow.cache = LibraryStats::delta(&library.stats(), &before);
        out.push(CornerReport {
            tech: tech.name.clone(),
            flow,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_names_resolve() {
        assert_eq!(corner_by_name("cmos130").unwrap().name, "cmos130");
        assert_eq!(corner_by_name("cmos90").unwrap().name, "cmos90");
        assert!(corner_by_name("cmos7").is_err());
    }

    #[test]
    fn shared_library_makes_second_sweep_all_hits() {
        let corners = [Technology::cmos130()];
        let opts = FlowOptions {
            threads: 1,
            ..Default::default()
        };
        let lib = NoiseModelLibrary::new();
        let cold = run_corners_with(&corners, 2, 17, &opts, &lib).expect("cold");
        let warm = run_corners_with(&corners, 2, 17, &opts, &lib).expect("warm");
        // Cold pays characterization; the warm sweep of the same design
        // re-characterizes nothing (thevenin/nrc included) and its delta
        // stats report only its own hits.
        assert!(cold[0].flow.cache.misses > 0);
        assert_eq!(warm[0].flow.cache.misses, 0);
        assert_eq!(
            warm[0].flow.cache.hits,
            cold[0].flow.cache.hits + cold[0].flow.cache.misses
        );
        // Same artifacts in, same findings out.
        assert_eq!(
            format!("{:?}", cold[0].flow.report),
            format!("{:?}", warm[0].flow.report)
        );
    }

    #[test]
    fn sweep_covers_both_nodes() {
        let corners = [Technology::cmos130(), Technology::cmos90()];
        let opts = FlowOptions {
            threads: 2,
            ..Default::default()
        };
        let reports = run_corners(&corners, 2, 17, &opts).expect("sweep");
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].tech, "cmos130");
        assert_eq!(reports[1].tech, "cmos90");
        for r in &reports {
            assert_eq!(r.flow.report.total(), 2, "{}", r.tech);
        }
    }
}
