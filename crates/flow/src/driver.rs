//! The parallel design-level driver.
//!
//! [`run_sna_parallel`] is the full-chip counterpart of
//! [`sna_core::sna::run_sna`]: the same per-cluster kernel
//! ([`analyze_cluster`]), scheduled across a worker pool with one shared
//! [`NoiseModelLibrary`] so characterization artifacts are paid for once
//! per (cell, drive-state, load-bucket) rather than once per thread. The
//! merge is order-preserving, so the report at `threads = N` is identical
//! to the report at `threads = 1` — cache *statistics* are the only thing
//! allowed to vary run-to-run (two workers racing on a cold key may both
//! characterize; the artifacts are deterministic, the counters are not).

use sna_core::cluster::MacromodelOptions;
use sna_core::library::{LibraryStats, NoiseModelLibrary};
use sna_core::nrc::NoiseRejectionCurve;
use sna_core::sna::{analyze_cluster, Design, NoiseReport, SkippedCluster, SnaOptions};
use sna_obs::{phase_span, trace_span, Phase};
use sna_spice::error::Result;

use crate::pool::{auto_threads, parallel_map_ordered_metered, PoolMetrics};

/// Controls for a parallel flow run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowOptions {
    /// Per-cluster analysis controls (alignment, guard band, strictness).
    pub sna: SnaOptions,
    /// Macromodel build controls.
    pub mm: MacromodelOptions,
    /// Worker count; 0 means "use available parallelism".
    pub threads: usize,
}

/// A design-level report plus the run's execution metadata.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The noise report, in design order — byte-identical across thread
    /// counts.
    pub report: NoiseReport,
    /// Shared-cache hit/miss counters (diagnostic; may vary run-to-run
    /// under cold-cache races).
    pub cache: LibraryStats,
    /// Worker count actually used.
    pub threads: usize,
    /// Pool execution metrics (diagnostic; timing varies run-to-run and is
    /// never serialized into the noise report).
    pub pool: PoolMetrics,
    /// Wall time per cluster (name, ns), in design order (diagnostic).
    pub cluster_wall_nanos: Vec<(String, u64)>,
}

/// Run static noise analysis over `design` on a worker pool.
///
/// # Errors
///
/// In strict mode ([`SnaOptions::strict`]), fails with the first
/// per-cluster error *in design order* (not completion order), so strict
/// failures are as deterministic as the report itself. Non-strict runs
/// downgrade per-cluster failures to [`NoiseReport::skipped`] diagnostics.
pub fn run_sna_parallel(
    design: &Design,
    nrc: &NoiseRejectionCurve,
    opts: &FlowOptions,
) -> Result<FlowReport> {
    run_sna_parallel_with(design, nrc, opts, &NoiseModelLibrary::new())
}

/// As [`run_sna_parallel`], but characterizing into a caller-provided
/// library. This lets a multi-corner driver own the cache (and its
/// per-artifact-kind statistics) across the NRC characterization and the
/// flow run, rather than losing the NRC's bookkeeping to an internal
/// library that is dropped on return.
///
/// # Errors
///
/// As [`run_sna_parallel`].
pub fn run_sna_parallel_with(
    design: &Design,
    nrc: &NoiseRejectionCurve,
    opts: &FlowOptions,
    library: &NoiseModelLibrary,
) -> Result<FlowReport> {
    let _t = phase_span(Phase::Flow);
    let _tr = trace_span("flow", "run_sna_parallel");
    // Mirror the pool's clamp so FlowReport::threads reports the worker
    // count actually used, not the requested one.
    let threads = if opts.threads == 0 {
        auto_threads()
    } else {
        opts.threads
    }
    .clamp(1, design.clusters.len().max(1));
    // Strict-mode early exit: once any cluster fails, analyzing clusters
    // *after* it (in design order) is wasted work — the run will abort
    // with the first design-order error regardless. Workers keep analyzing
    // indices at or below the lowest failure seen so far (an even earlier
    // cluster could still fail and become the reported error), and stub
    // everything past it. The reported error therefore stays exactly the
    // serial one: the first stub in design order can only sit behind a
    // real failure, so the merge loop below never reaches it.
    let min_fail = std::sync::atomic::AtomicUsize::new(usize::MAX);
    let strict = opts.sna.strict;
    let (outcomes, pool) = parallel_map_ordered_metered(threads, &design.clusters, |i, cluster| {
        use std::sync::atomic::Ordering;
        if strict && i > min_fail.load(Ordering::Relaxed) {
            return Err((
                cluster.name.clone(),
                sna_spice::error::Error::InvalidAnalysis(
                    "not analyzed: an earlier cluster already failed the strict run".into(),
                ),
            ));
        }
        let _t = phase_span(Phase::Cluster);
        let _tr = trace_span("cluster", &cluster.name);
        analyze_cluster(cluster, nrc, &opts.sna, &opts.mm, library).map_err(|e| {
            if strict {
                min_fail.fetch_min(i, Ordering::Relaxed);
            }
            (cluster.name.clone(), e)
        })
    });
    let mut report = NoiseReport::default();
    for outcome in outcomes {
        match outcome {
            Ok(finding) => report.findings.push(finding),
            Err((_, e)) if opts.sna.strict => return Err(e),
            Err((name, e)) => report.skipped.push(SkippedCluster {
                name,
                reason: e.to_string(),
            }),
        }
    }
    let cluster_wall_nanos = design
        .clusters
        .iter()
        .map(|c| c.name.clone())
        .zip(pool.job_nanos.iter().copied())
        .collect();
    Ok(FlowReport {
        report,
        cache: library.stats(),
        threads,
        pool,
        cluster_wall_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_cells::{Cell, Technology};
    use sna_core::nrc::characterize_nrc;
    use sna_spice::units::PS;

    fn small_nrc(tech: &Technology) -> NoiseRejectionCurve {
        characterize_nrc(
            &Cell::inv(tech.clone(), 1.0),
            true,
            &[100.0 * PS, 300.0 * PS, 900.0 * PS],
        )
        .expect("nrc")
    }

    #[test]
    fn parallel_flow_matches_serial_run_sna() {
        let tech = Technology::cmos130();
        let design = Design::random(&tech, 6, 2005);
        let nrc = small_nrc(&tech);
        let opts = FlowOptions {
            threads: 3,
            ..Default::default()
        };
        let par = run_sna_parallel(&design, &nrc, &opts).expect("parallel");
        let serial = sna_core::sna::run_sna(&design, &nrc, &SnaOptions::default()).expect("serial");
        assert_eq!(par.report.findings.len(), serial.findings.len());
        for (p, s) in par.report.findings.iter().zip(&serial.findings) {
            assert_eq!(p.name, s.name);
            assert_eq!(p.margin.to_bits(), s.margin.to_bits(), "{}", p.name);
            assert_eq!(p.verdict, s.verdict);
        }
        assert_eq!(par.threads, 3);
        // The shared cache did real work.
        assert!(par.cache.hits + par.cache.misses > 0);
        // Pool metrics cover every worker and every cluster.
        assert_eq!(par.pool.worker_busy_nanos.len(), 3);
        assert_eq!(par.pool.worker_jobs.iter().sum::<usize>(), 6);
        assert_eq!(par.cluster_wall_nanos.len(), 6);
        assert!(par.cluster_wall_nanos.iter().all(|(_, ns)| *ns > 0));
    }

    #[test]
    fn strict_mode_fails_deterministically_in_design_order() {
        let tech = Technology::cmos130();
        let mut design = Design::random(&tech, 5, 3);
        design.clusters[1].spec.dt = 0.0; // fails validation
        design.clusters[3].spec.dt = 0.0;
        let nrc = small_nrc(&tech);
        let mut opts = FlowOptions {
            threads: 4,
            ..Default::default()
        };
        // Non-strict: both bad clusters downgraded, in design order.
        let report = run_sna_parallel(&design, &nrc, &opts).expect("non-strict");
        assert_eq!(report.report.findings.len(), 3);
        let skipped: Vec<&str> = report
            .report
            .skipped
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(skipped, ["net001", "net003"]);
        // Strict: aborts with the first design-order failure — the real
        // cluster error, never the "not analyzed" early-exit stub.
        opts.sna.strict = true;
        let err = run_sna_parallel(&design, &nrc, &opts).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("bad cluster window"),
            "expected net001's own validation error, got: {msg}"
        );
    }
}
